"""Benchmark applications: the paper's examples plus auxiliary workloads."""

from .fdct import (build_fdct1, build_fdct2, fdct_arrays, fdct_inputs,
                   fdct_kernel, fdct_params)
from .fir import build_fir, fir_arrays, fir_inputs, fir_kernel, fir_params
from .idct import build_idct, idct_arrays, idct_kernel, idct_params
from .hamming import (build_hamming, hamming_arrays, hamming_decode_kernel,
                      hamming_encode, hamming_inputs, hamming_params,
                      inject_errors)
from .matmul import (build_matmul, matmul_arrays, matmul_inputs,
                     matmul_kernel, matmul_params)
from .popcount import (build_popcount, popcount_arrays, popcount_inputs,
                       popcount_kernel, popcount_params)
from .registry import CASE_BUILDERS, standard_suite, suite_case
from .threshold import (build_threshold, threshold_arrays, threshold_inputs,
                        threshold_kernel, threshold_params)

__all__ = [
    "fdct_kernel", "fdct_arrays", "fdct_params", "fdct_inputs",
    "build_fdct1", "build_fdct2",
    "idct_kernel", "idct_arrays", "idct_params", "build_idct",
    "hamming_decode_kernel", "hamming_encode", "inject_errors",
    "hamming_arrays", "hamming_params", "hamming_inputs", "build_hamming",
    "fir_kernel", "fir_arrays", "fir_params", "fir_inputs", "build_fir",
    "matmul_kernel", "matmul_arrays", "matmul_params", "matmul_inputs",
    "build_matmul",
    "threshold_kernel", "threshold_arrays", "threshold_params",
    "threshold_inputs", "build_threshold",
    "popcount_kernel", "popcount_arrays", "popcount_params",
    "popcount_inputs", "build_popcount",
    "standard_suite", "suite_case", "CASE_BUILDERS",
]
