"""The operator catalog: XML type names → component builders.

This is the "Library of Operators" box in the paper's Figure 1.  The
netlist translator (:mod:`repro.translate.to_sim`) parses a datapath
description, resolves nets to signals, and asks the catalog to build each
component from its ``type`` attribute, port map and parameters.

Users can extend the library by registering new builders with
:func:`register_operator`, mirroring how new Hades operator models are
added to the Java library in the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..sim.component import Component
from ..sim.errors import ElaborationError
from ..sim.kernel import Simulator
from ..sim.signal import Signal
from ..util.files import MemoryImage
from . import arithmetic, comparison, conversion, logic, memory, mux, registers

__all__ = ["BuildContext", "register_operator", "build_operator",
           "operator_types", "OperatorBuilder"]


class BuildContext:
    """Everything a builder may need beyond the port map.

    ``memories`` maps memory resource ids to the live
    :class:`MemoryImage` instances (owned by the test harness or the
    reconfiguration context, so contents persist across configurations).
    """

    def __init__(self, sim: Simulator,
                 memories: Optional[Dict[str, MemoryImage]] = None) -> None:
        self.sim = sim
        self.memories = memories or {}

    def memory(self, memory_id: str) -> MemoryImage:
        try:
            return self.memories[memory_id]
        except KeyError:
            raise ElaborationError(
                f"no memory resource bound for id {memory_id!r} "
                f"(bound: {sorted(self.memories)})"
            ) from None


PortMap = Dict[str, Signal]
ParamMap = Dict[str, str]
OperatorBuilder = Callable[[BuildContext, str, PortMap, ParamMap], Component]

_CATALOG: Dict[str, OperatorBuilder] = {}


def register_operator(type_name: str) -> Callable[[OperatorBuilder],
                                                  OperatorBuilder]:
    """Decorator adding a builder for *type_name* to the catalog."""

    def decorate(builder: OperatorBuilder) -> OperatorBuilder:
        if type_name in _CATALOG:
            raise ValueError(f"operator type {type_name!r} already registered")
        _CATALOG[type_name] = builder
        return builder

    return decorate


def operator_types() -> list:
    """All registered operator type names, sorted."""
    return sorted(_CATALOG)


def build_operator(ctx: BuildContext, type_name: str, name: str,
                   ports: PortMap, params: ParamMap) -> Component:
    """Instantiate one operator and register it with the simulator."""
    try:
        builder = _CATALOG[type_name]
    except KeyError:
        raise ElaborationError(
            f"component {name!r}: unknown operator type {type_name!r} "
            f"(known: {operator_types()})"
        ) from None
    return builder(ctx, name, ports, params)


# ----------------------------------------------------------------------
# Port helpers
# ----------------------------------------------------------------------
def _port(name: str, ports: PortMap, port_name: str) -> Signal:
    try:
        return ports[port_name]
    except KeyError:
        raise ElaborationError(
            f"component {name!r}: missing port {port_name!r} "
            f"(have: {sorted(ports)})"
        ) from None


def _out(ctx: BuildContext, name: str, ports: PortMap, port_name: str,
         width: int) -> Signal:
    """The output signal for *port_name*, or a private stub when the
    netlist leaves the output unconnected (legal for unused results,
    e.g. in unoptimized designs)."""
    signal = ports.get(port_name)
    if signal is None:
        signal = ctx.sim.signal(f"{name}__{port_name}", width)
    return signal


def _indexed_ports(name: str, ports: PortMap, prefix: str) -> list:
    """Collect ``in0, in1, ...`` style ports in index order."""
    indexed = []
    for port_name, signal in ports.items():
        if port_name.startswith(prefix) and port_name[len(prefix):].isdigit():
            indexed.append((int(port_name[len(prefix):]), signal))
    if not indexed:
        raise ElaborationError(
            f"component {name!r}: no {prefix}* ports found"
        )
    indexed.sort()
    expected = list(range(len(indexed)))
    if [i for i, _ in indexed] != expected:
        raise ElaborationError(
            f"component {name!r}: {prefix}* ports are not contiguous"
        )
    return [signal for _, signal in indexed]


def _binary(cls):
    def build(ctx: BuildContext, name: str, ports: PortMap,
              params: ParamMap) -> Component:
        a = _port(name, ports, "a")
        component = cls(name, a, _port(name, ports, "b"),
                        _out(ctx, name, ports, "y", a.width))
        return ctx.sim.add_async(component)

    return build


def _unary(cls):
    def build(ctx: BuildContext, name: str, ports: PortMap,
              params: ParamMap) -> Component:
        a = _port(name, ports, "a")
        component = cls(name, a, _out(ctx, name, ports, "y", a.width))
        return ctx.sim.add_async(component)

    return build


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
def _divider(cls):
    """Dividers built from a netlist run non-strict (see _DivBase): their
    operands carry garbage in states that do not consume the result."""

    def build(ctx: BuildContext, name: str, ports: PortMap,
              params: ParamMap) -> Component:
        strict = params.get("strict", "0") not in ("0", "false")
        a = _port(name, ports, "a")
        component = cls(name, a, _port(name, ports, "b"),
                        _out(ctx, name, ports, "y", a.width),
                        strict=strict)
        return ctx.sim.add_async(component)

    return build


register_operator("add")(_binary(arithmetic.Adder))
register_operator("sub")(_binary(arithmetic.Subtractor))
register_operator("mul")(_binary(arithmetic.Multiplier))
register_operator("mulfull")(_binary(arithmetic.MultiplierFull))
register_operator("div")(_divider(arithmetic.DividerSigned))
register_operator("fdiv")(_divider(arithmetic.DividerFloor))
register_operator("fmod")(_divider(arithmetic.RemainderFloor))
register_operator("rem")(_divider(arithmetic.RemainderSigned))
register_operator("divu")(_divider(arithmetic.DividerUnsigned))
register_operator("remu")(_divider(arithmetic.RemainderUnsigned))
register_operator("min")(_binary(arithmetic.MinSigned))
register_operator("max")(_binary(arithmetic.MaxSigned))
register_operator("neg")(_unary(arithmetic.Negate))
register_operator("abs")(_unary(arithmetic.AbsValue))


@register_operator("const")
def _build_const(ctx: BuildContext, name: str, ports: PortMap,
                 params: ParamMap) -> Component:
    if "value" not in params:
        raise ElaborationError(f"component {name!r}: const needs a 'value'")
    component = arithmetic.Constant(name, _port(name, ports, "y"),
                                    int(params["value"], 0))
    ctx.sim.add_async(component)
    component.emit(ctx.sim)
    return component


# ----------------------------------------------------------------------
# Logic and shifts
# ----------------------------------------------------------------------
register_operator("and")(_binary(logic.BitwiseAnd))
register_operator("or")(_binary(logic.BitwiseOr))
register_operator("xor")(_binary(logic.BitwiseXor))
register_operator("not")(_unary(logic.BitwiseNot))
register_operator("shl")(_binary(logic.ShiftLeft))
register_operator("lshr")(_binary(logic.ShiftRightLogical))
register_operator("ashr")(_binary(logic.ShiftRightArith))


# ----------------------------------------------------------------------
# Comparators
# ----------------------------------------------------------------------
def _comparator(op: str):
    def build(ctx: BuildContext, name: str, ports: PortMap,
              params: ParamMap) -> Component:
        signed = params.get("signed", "1") not in ("0", "false")
        component = comparison.Comparator(
            name, op, _port(name, ports, "a"), _port(name, ports, "b"),
            _out(ctx, name, ports, "y", 1), signed=signed,
        )
        return ctx.sim.add_async(component)

    return build


for _op in comparison.COMPARE_OPS:
    register_operator(_op)(_comparator(_op))


# ----------------------------------------------------------------------
# Routing and storage
# ----------------------------------------------------------------------
@register_operator("mux")
def _build_mux(ctx: BuildContext, name: str, ports: PortMap,
               params: ParamMap) -> Component:
    inputs = _indexed_ports(name, ports, "in")
    component = mux.Mux(name, _port(name, ports, "sel"), inputs,
                        _out(ctx, name, ports, "y", inputs[0].width))
    return ctx.sim.add_async(component)


@register_operator("reg")
def _build_reg(ctx: BuildContext, name: str, ports: PortMap,
               params: ParamMap) -> Component:
    init = int(params.get("init", "0"), 0)
    d = _port(name, ports, "d")
    component = registers.Register(
        name, d, _out(ctx, name, ports, "q", d.width),
        en=ports.get("en"), init=init,
    )
    return ctx.sim.add(component)


@register_operator("counter")
def _build_counter(ctx: BuildContext, name: str, ports: PortMap,
                   params: ParamMap) -> Component:
    component = registers.Counter(
        name, _port(name, ports, "q"), en=ports.get("en"),
        load=ports.get("load"), d=ports.get("d"),
        init=int(params.get("init", "0"), 0),
        step=int(params.get("step", "1"), 0),
    )
    return ctx.sim.add(component)


@register_operator("sram")
def _build_sram(ctx: BuildContext, name: str, ports: PortMap,
                params: ParamMap) -> Component:
    if "memory" not in params:
        raise ElaborationError(
            f"component {name!r}: sram needs a 'memory' resource id"
        )
    image = ctx.memory(params["memory"])
    # A write-only port leaves 'dout' unconnected; a read-only port leaves
    # 'din'/'we' unconnected.  Unconnected ports get private stub signals
    # ('we' stuck at 0 disables the write path entirely).
    din = ports.get("din")
    if din is None:
        din = ctx.sim.signal(f"{name}__din", image.width)
    dout = ports.get("dout")
    if dout is None:
        dout = ctx.sim.signal(f"{name}__dout", image.width)
    we = ports.get("we")
    if we is None:
        we = ctx.sim.signal(f"{name}__we", 1)
    component = memory.Sram(
        name, _port(name, ports, "addr"), din, dout, we, image,
    )
    ctx.sim.add(component)
    component.prime(ctx.sim)
    return component


@register_operator("rom")
def _build_rom(ctx: BuildContext, name: str, ports: PortMap,
               params: ParamMap) -> Component:
    if "memory" not in params:
        raise ElaborationError(
            f"component {name!r}: rom needs a 'memory' resource id"
        )
    image = ctx.memory(params["memory"])
    component = memory.Rom(name, _port(name, ports, "addr"),
                           _port(name, ports, "dout"), image)
    ctx.sim.add_async(component)
    component.prime(ctx.sim)
    return component


# ----------------------------------------------------------------------
# Width conversion
# ----------------------------------------------------------------------
register_operator("zext")(_unary(conversion.ZeroExtend))
register_operator("sext")(_unary(conversion.SignExtend))
register_operator("trunc")(_unary(conversion.Truncate))


@register_operator("slice")
def _build_slice(ctx: BuildContext, name: str, ports: PortMap,
                 params: ParamMap) -> Component:
    component = conversion.Slice(
        name, _port(name, ports, "a"), _port(name, ports, "y"),
        high=int(params["high"], 0), low=int(params["low"], 0),
    )
    return ctx.sim.add_async(component)


@register_operator("concat")
def _build_concat(ctx: BuildContext, name: str, ports: PortMap,
                  params: ParamMap) -> Component:
    inputs = _indexed_ports(name, ports, "in")
    component = conversion.Concat(name, inputs, _port(name, ports, "y"))
    return ctx.sim.add_async(component)
