"""Shared machinery for the operator library.

Every operator is a small simulation component with conventional port names
(``a``/``b``/``y`` for binary operators, ``d``/``q``/``en`` for registers,
and so on).  The same names appear in the datapath XML dialect, so the
netlist builder in :mod:`repro.translate.to_sim` can wire any operator from
its XML description via the catalog in :mod:`repro.operators.catalog`.
"""

from __future__ import annotations

from ..sim.component import Combinational
from ..sim.errors import ElaborationError
from ..sim.signal import Signal

__all__ = ["signed_value", "require_same_width", "require_width",
           "BinaryOp", "UnaryOp"]


def signed_value(value: int, width: int) -> int:
    """Reinterpret a masked unsigned *value* as two's complement."""
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def require_same_width(name: str, *signals: Signal) -> int:
    """All *signals* must share one width; returns it."""
    widths = {sig.width for sig in signals}
    if len(widths) != 1:
        detail = ", ".join(f"{sig.name}:{sig.width}" for sig in signals)
        raise ElaborationError(f"{name!r}: width mismatch ({detail})")
    return widths.pop()


def require_width(name: str, signal: Signal, width: int) -> None:
    if signal.width != width:
        raise ElaborationError(
            f"{name!r}: signal {signal.name!r} must be {width} bits wide, "
            f"got {signal.width}"
        )


class BinaryOp(Combinational):
    """Two same-width inputs ``a``/``b``, one output ``y``.

    Subclasses implement :meth:`compute` over the raw unsigned input
    values; the result is masked to the output width by the kernel.
    """

    #: set by subclasses that produce a 1-bit result (comparators)
    result_width_one = False

    def __init__(self, name: str, a: Signal, b: Signal, y: Signal) -> None:
        super().__init__(name, inputs=(a, b))
        self.width = require_same_width(name, a, b)
        if self.result_width_one:
            require_width(name, y, 1)
        else:
            require_same_width(name, a, b, y)
        self.a = a
        self.b = b
        self.y = y
        y.set_driver(self)

    def compute(self, a: int, b: int) -> int:
        raise NotImplementedError

    def evaluate(self, sim) -> None:
        sim.drive(self.y, self.compute(self.a.value, self.b.value))

    def signals(self):
        return (self.a, self.b, self.y)


class UnaryOp(Combinational):
    """One input ``a``, one output ``y`` of the same width."""

    def __init__(self, name: str, a: Signal, y: Signal) -> None:
        super().__init__(name, inputs=(a,))
        self.width = require_same_width(name, a, y)
        self.a = a
        self.y = y
        y.set_driver(self)

    def compute(self, a: int) -> int:
        raise NotImplementedError

    def evaluate(self, sim) -> None:
        sim.drive(self.y, self.compute(self.a.value))

    def signals(self):
        return (self.a, self.y)
