"""Width conversion: extension, truncation, slicing and concatenation."""

from __future__ import annotations

from typing import Sequence

from ..sim.component import Combinational
from ..sim.errors import ElaborationError
from ..sim.signal import Signal
from .base import signed_value

__all__ = ["ZeroExtend", "SignExtend", "Truncate", "Slice", "Concat"]


class ZeroExtend(Combinational):
    """``y = a`` with high bits cleared; ``y`` wider than ``a``."""

    def __init__(self, name: str, a: Signal, y: Signal) -> None:
        if y.width < a.width:
            raise ElaborationError(
                f"{name!r}: cannot zero-extend {a.width} bits to {y.width}"
            )
        super().__init__(name, inputs=(a,))
        self.a, self.y = a, y
        y.set_driver(self)

    def evaluate(self, sim) -> None:
        sim.drive(self.y, self.a.value)

    def signals(self):
        return (self.a, self.y)


class SignExtend(Combinational):
    """``y = a`` with the sign bit replicated; ``y`` wider than ``a``."""

    def __init__(self, name: str, a: Signal, y: Signal) -> None:
        if y.width < a.width:
            raise ElaborationError(
                f"{name!r}: cannot sign-extend {a.width} bits to {y.width}"
            )
        super().__init__(name, inputs=(a,))
        self.a, self.y = a, y
        y.set_driver(self)

    def evaluate(self, sim) -> None:
        sim.drive(self.y, signed_value(self.a.value, self.a.width))

    def signals(self):
        return (self.a, self.y)


class Truncate(Combinational):
    """``y = a[y.width-1:0]``; ``y`` narrower than ``a``."""

    def __init__(self, name: str, a: Signal, y: Signal) -> None:
        if y.width > a.width:
            raise ElaborationError(
                f"{name!r}: cannot truncate {a.width} bits to {y.width}"
            )
        super().__init__(name, inputs=(a,))
        self.a, self.y = a, y
        y.set_driver(self)

    def evaluate(self, sim) -> None:
        sim.drive(self.y, self.a.value)  # kernel masks to y.width

    def signals(self):
        return (self.a, self.y)


class Slice(Combinational):
    """``y = a[high:low]`` (inclusive, Verilog style)."""

    def __init__(self, name: str, a: Signal, y: Signal,
                 high: int, low: int) -> None:
        if not 0 <= low <= high < a.width:
            raise ElaborationError(
                f"{name!r}: slice [{high}:{low}] out of range for "
                f"{a.width}-bit input"
            )
        if y.width != high - low + 1:
            raise ElaborationError(
                f"{name!r}: output must be {high - low + 1} bits, "
                f"got {y.width}"
            )
        super().__init__(name, inputs=(a,))
        self.a, self.y = a, y
        self.high, self.low = high, low
        y.set_driver(self)

    def evaluate(self, sim) -> None:
        sim.drive(self.y, self.a.value >> self.low)

    def signals(self):
        return (self.a, self.y)


class Concat(Combinational):
    """``y = {inputs[0], inputs[1], ...}`` — first input is most significant."""

    def __init__(self, name: str, inputs: Sequence[Signal],
                 y: Signal) -> None:
        if not inputs:
            raise ElaborationError(f"{name!r}: concat needs inputs")
        total = sum(sig.width for sig in inputs)
        if y.width != total:
            raise ElaborationError(
                f"{name!r}: output must be {total} bits, got {y.width}"
            )
        super().__init__(name, inputs=inputs)
        self.inputs = list(inputs)
        self.y = y
        y.set_driver(self)

    def evaluate(self, sim) -> None:
        value = 0
        for sig in self.inputs:
            value = (value << sig.width) | sig.value
        sim.drive(self.y, value)

    def signals(self):
        return (*self.inputs, self.y)
