"""Comparators.

A comparator produces the 1-bit status line the control unit samples when
deciding FSM transitions (loop exits, ``if`` branches).
"""

from __future__ import annotations

from typing import Callable, Dict

from ..sim.errors import ElaborationError
from ..sim.signal import Signal
from .base import BinaryOp, signed_value

__all__ = ["Comparator", "COMPARE_OPS"]

#: op name -> (signed predicate) over Python ints
COMPARE_OPS: Dict[str, Callable[[int, int], bool]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


class Comparator(BinaryOp):
    """``y = a <op> b`` as a single status bit.

    ``op`` is one of ``eq ne lt le gt ge``; ordering comparisons use the
    signed interpretation unless ``signed=False``.
    """

    result_width_one = True

    def __init__(self, name: str, op: str, a: Signal, b: Signal, y: Signal,
                 *, signed: bool = True) -> None:
        if op not in COMPARE_OPS:
            raise ElaborationError(
                f"{name!r}: unknown comparison op {op!r} "
                f"(expected one of {sorted(COMPARE_OPS)})"
            )
        self.op = op
        self.signed_mode = signed
        self._predicate = COMPARE_OPS[op]
        super().__init__(name, a, b, y)

    def compute(self, a: int, b: int) -> int:
        if self.signed_mode and self.op not in ("eq", "ne"):
            a = signed_value(a, self.width)
            b = signed_value(b, self.width)
        return int(self._predicate(a, b))
