"""Behavioural operator library (the paper's "Library of Operators").

Components follow conventional port names so the datapath XML dialect and
the netlist builder can instantiate them uniformly through
:mod:`repro.operators.catalog`.
"""

from .arithmetic import (AbsValue, Adder, Constant, DividerFloor,
                         DividerSigned, DividerUnsigned, MaxSigned,
                         MinSigned, Multiplier, MultiplierFull, Negate,
                         RemainderFloor, RemainderSigned, RemainderUnsigned,
                         Subtractor)
from .base import BinaryOp, UnaryOp
from .catalog import (BuildContext, build_operator, operator_types,
                      register_operator)
from .comparison import COMPARE_OPS, Comparator
from .conversion import Concat, SignExtend, Slice, Truncate, ZeroExtend
from .io import CaptureSink, StimulusSource
from .logic import (BitwiseAnd, BitwiseNot, BitwiseOr, BitwiseXor, ShiftLeft,
                    ShiftRightArith, ShiftRightLogical)
from .memory import Rom, Sram
from .mux import Mux, select_width
from .registers import Counter, Register

__all__ = [
    "Adder", "Subtractor", "Multiplier", "MultiplierFull", "DividerSigned",
    "RemainderSigned", "DividerFloor", "RemainderFloor",
    "DividerUnsigned", "RemainderUnsigned", "Negate",
    "AbsValue", "MinSigned", "MaxSigned", "Constant",
    "BitwiseAnd", "BitwiseOr", "BitwiseXor", "BitwiseNot",
    "ShiftLeft", "ShiftRightLogical", "ShiftRightArith",
    "Comparator", "COMPARE_OPS",
    "Mux", "select_width",
    "Register", "Counter",
    "Sram", "Rom",
    "StimulusSource", "CaptureSink",
    "ZeroExtend", "SignExtend", "Truncate", "Slice", "Concat",
    "BinaryOp", "UnaryOp",
    "BuildContext", "build_operator", "operator_types", "register_operator",
]
