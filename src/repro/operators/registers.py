"""Sequential storage elements: registers and counters."""

from __future__ import annotations

from typing import Optional

from ..sim.component import Sequential
from ..sim.errors import ElaborationError
from ..sim.signal import Signal
from .base import require_same_width, require_width

__all__ = ["Register", "Counter"]


class Register(Sequential):
    """An edge-triggered register with optional enable.

    ``q`` takes the pre-edge value of ``d`` at each clock edge while ``en``
    (if present) is high.  The enable doubles as the clock-domain arming
    signal, so a disabled register costs nothing per cycle in the main
    kernel; the enable is still re-checked in :meth:`on_edge` so the
    oblivious kernel (which ignores arming) produces identical results.
    """

    def __init__(self, name: str, d: Signal, q: Signal,
                 en: Optional[Signal] = None, init: int = 0) -> None:
        super().__init__(name, clock_enable=en)
        require_same_width(name, d, q)
        if en is not None:
            require_width(name, en, 1)
        self.d = d
        self.q = q
        self.en = en
        self.init = init & q.mask
        q.set_driver(self)
        q.value = self.init

    def on_edge(self, sim) -> None:
        if self.en is None or self.en.value:
            sim.drive(self.q, self.d.value)

    def reset(self, sim) -> None:
        """Force ``q`` back to its initial value (design-level reset)."""
        sim.drive(self.q, self.init)

    def signals(self):
        return tuple(s for s in (self.d, self.q, self.en) if s is not None)


class Counter(Sequential):
    """An up-counter with enable and synchronous load.

    Priority: load beats count.  Provided for hand-built designs and
    kernel tests; the compiler builds loop counters out of registers and
    adders instead (one FU per operation, as the paper's operator counts
    suggest).
    """

    def __init__(self, name: str, q: Signal,
                 en: Optional[Signal] = None,
                 load: Optional[Signal] = None,
                 d: Optional[Signal] = None,
                 init: int = 0, step: int = 1) -> None:
        if (load is None) != (d is None):
            raise ElaborationError(
                f"{name!r}: 'load' and 'd' must be given together"
            )
        # the counter must also wake up for loads, so only pure
        # enable-gated counters can use arming
        super().__init__(name, clock_enable=en if load is None else None)
        if en is not None:
            require_width(name, en, 1)
        if load is not None:
            require_width(name, load, 1)
            require_same_width(name, d, q)
        self.q = q
        self.en = en
        self.load = load
        self.d = d
        self.step = step
        self.init = init & q.mask
        q.set_driver(self)
        q.value = self.init

    def on_edge(self, sim) -> None:
        if self.load is not None and self.load.value:
            sim.drive(self.q, self.d.value)
        elif self.en is None or self.en.value:
            sim.drive(self.q, self.q.value + self.step)

    def reset(self, sim) -> None:
        sim.drive(self.q, self.init)

    def signals(self):
        return tuple(s for s in (self.q, self.en, self.load, self.d)
                     if s is not None)
