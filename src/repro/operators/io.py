"""Stream-style I/O components: stimulus sources and capture sinks.

The compiled designs exchange data through SRAMs, but hand-built designs
and kernel tests also want cycle-by-cycle stimulus and capture — the
"Stimulus" box of the paper's Figure 1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..sim.component import Sequential
from ..sim.errors import ElaborationError
from ..sim.signal import Signal

__all__ = ["StimulusSource", "CaptureSink"]


class StimulusSource(Sequential):
    """Plays a sequence of values, one per enabled clock cycle.

    ``valid`` (if provided) is driven to 1 while values remain and 0 once
    the sequence is exhausted; ``y`` holds the last value afterwards.
    """

    def __init__(self, name: str, y: Signal,
                 values: Sequence[int],
                 en: Optional[Signal] = None,
                 valid: Optional[Signal] = None) -> None:
        super().__init__(name, clock_enable=en)
        if valid is not None and valid.width != 1:
            raise ElaborationError(f"{name!r}: 'valid' must be 1 bit wide")
        self.y = y
        self.valid = valid
        self.values = list(values)
        self.index = 0
        y.set_driver(self)
        if valid is not None:
            valid.set_driver(self)
            valid.value = 1 if self.values else 0
        if self.values:
            y.value = self.values[0] & y.mask

    def on_edge(self, sim) -> None:
        if self.index + 1 < len(self.values):
            self.index += 1
            sim.drive(self.y, self.values[self.index])
        elif self.valid is not None and self.index + 1 == len(self.values):
            self.index += 1
            sim.drive(self.valid, 0)

    @property
    def exhausted(self) -> bool:
        """True once every value has been presented on ``y``."""
        return self.index + 1 >= len(self.values)

    def signals(self):
        return tuple(s for s in (self.y, self.valid, self.clock_enable)
                     if s is not None)


class CaptureSink(Sequential):
    """Records the value of ``d`` at every enabled clock edge."""

    def __init__(self, name: str, d: Signal,
                 en: Optional[Signal] = None) -> None:
        super().__init__(name, clock_enable=en)
        self.d = d
        self.en = en
        self.captured: List[int] = []

    def on_edge(self, sim) -> None:
        if self.en is None or self.en.value:
            self.captured.append(self.d.value)

    def signals(self):
        return tuple(s for s in (self.d, self.en) if s is not None)
