"""Bitwise logic and shift functional units."""

from __future__ import annotations

from .base import BinaryOp, UnaryOp, signed_value

__all__ = ["BitwiseAnd", "BitwiseOr", "BitwiseXor", "BitwiseNot",
           "ShiftLeft", "ShiftRightLogical", "ShiftRightArith"]


class BitwiseAnd(BinaryOp):
    def compute(self, a: int, b: int) -> int:
        return a & b


class BitwiseOr(BinaryOp):
    def compute(self, a: int, b: int) -> int:
        return a | b


class BitwiseXor(BinaryOp):
    def compute(self, a: int, b: int) -> int:
        return a ^ b


class BitwiseNot(UnaryOp):
    def compute(self, a: int) -> int:
        return ~a


class _Shift(BinaryOp):
    """Shift units: ``b`` is the (unsigned) shift amount.

    Amounts of *width* or more shift everything out — a full barrel
    shifter fed the raw amount, matching
    :class:`repro.util.bitvector.BitVector` semantics.
    """


class ShiftLeft(_Shift):
    def compute(self, a: int, b: int) -> int:
        if b >= self.width:
            return 0
        return a << b


class ShiftRightLogical(_Shift):
    def compute(self, a: int, b: int) -> int:
        if b >= self.width:
            return 0
        return a >> b


class ShiftRightArith(_Shift):
    def compute(self, a: int, b: int) -> int:
        sa = signed_value(a, self.width)
        if b >= self.width:
            return -1 if sa < 0 else 0
        return sa >> b
