"""Arithmetic functional units.

All units wrap modulo ``2**width`` like their hardware counterparts.
Division and remainder follow Java/C truncate-toward-zero semantics (the
compiler's source language convention); dividing by zero raises — in real
hardware the result would be undefined, and surfacing the condition loudly
is exactly what a functional test infrastructure is for.
"""

from __future__ import annotations

from ..sim.component import Combinational
from ..sim.errors import SimulationError
from ..sim.signal import Signal
from .base import BinaryOp, UnaryOp, require_same_width, signed_value

__all__ = ["Adder", "Subtractor", "Multiplier", "MultiplierFull",
           "DividerSigned", "RemainderSigned", "DividerFloor",
           "RemainderFloor", "DividerUnsigned", "RemainderUnsigned",
           "Negate", "AbsValue", "Constant", "MinSigned", "MaxSigned"]


class Adder(BinaryOp):
    """``y = (a + b) mod 2**width``."""

    def compute(self, a: int, b: int) -> int:
        return a + b


class Subtractor(BinaryOp):
    """``y = (a - b) mod 2**width``."""

    def compute(self, a: int, b: int) -> int:
        return a - b


class Multiplier(BinaryOp):
    """``y = (a * b) mod 2**width`` (low half of the product)."""

    def compute(self, a: int, b: int) -> int:
        return a * b


class MultiplierFull(Combinational):
    """Full-precision signed multiplier: ``y`` is ``2*width`` bits wide."""

    def __init__(self, name: str, a: Signal, b: Signal, y: Signal) -> None:
        super().__init__(name, inputs=(a, b))
        width = require_same_width(name, a, b)
        if y.width != 2 * width:
            from ..sim.errors import ElaborationError

            raise ElaborationError(
                f"{name!r}: output must be {2 * width} bits, got {y.width}"
            )
        self.a, self.b, self.y = a, b, y
        self.width = width
        y.set_driver(self)

    def evaluate(self, sim) -> None:
        product = (signed_value(self.a.value, self.width)
                   * signed_value(self.b.value, self.width))
        sim.drive(self.y, product)

    def signals(self):
        return (self.a, self.b, self.y)


class _DivBase(BinaryOp):
    """Base for division units.

    In ``strict`` mode (default) a zero divisor raises immediately —
    right for hand-built designs and tests.  Compiler-generated datapaths
    build with ``strict=False``: a divider's operands carry garbage in
    control steps that do not use its result (operators compute
    continuously), so a transient zero divisor is expected there; the
    unit then outputs 0 and counts the event instead.
    """

    def __init__(self, name, a, b, y, *, strict: bool = True) -> None:
        super().__init__(name, a, b, y)
        self.strict = strict
        self.zero_divisor_events = 0

    def _zero_divisor(self) -> int:
        if self.strict:
            raise SimulationError(f"{self.name!r}: division by zero")
        self.zero_divisor_events += 1
        return 0


class DividerSigned(_DivBase):
    """Signed division truncating toward zero."""

    def compute(self, a: int, b: int) -> int:
        if b == 0:
            return self._zero_divisor()
        sa = signed_value(a, self.width)
        sb = signed_value(b, self.width)
        quotient = abs(sa) // abs(sb)
        return -quotient if (sa < 0) != (sb < 0) else quotient


class RemainderSigned(_DivBase):
    """Signed remainder; sign follows the dividend."""

    def compute(self, a: int, b: int) -> int:
        if b == 0:
            return self._zero_divisor()
        sa = signed_value(a, self.width)
        sb = signed_value(b, self.width)
        remainder = abs(sa) % abs(sb)
        return -remainder if sa < 0 else remainder


class DividerFloor(_DivBase):
    """Signed division rounding toward negative infinity (Python ``//``).

    ``x fdiv 2**k`` equals ``x ashr k`` for every signed ``x``, which is
    why the compiler's strength reduction is exact for this unit.
    """

    def compute(self, a: int, b: int) -> int:
        if b == 0:
            return self._zero_divisor()
        return signed_value(a, self.width) // signed_value(b, self.width)


class RemainderFloor(_DivBase):
    """Floor modulo: sign follows the divisor (Python ``%``)."""

    def compute(self, a: int, b: int) -> int:
        if b == 0:
            return self._zero_divisor()
        return signed_value(a, self.width) % signed_value(b, self.width)


class DividerUnsigned(_DivBase):
    def compute(self, a: int, b: int) -> int:
        if b == 0:
            return self._zero_divisor()
        return a // b


class RemainderUnsigned(_DivBase):
    def compute(self, a: int, b: int) -> int:
        if b == 0:
            return self._zero_divisor()
        return a % b


class Negate(UnaryOp):
    """``y = (-a) mod 2**width``."""

    def compute(self, a: int) -> int:
        return -a


class AbsValue(UnaryOp):
    """``y = |a|`` under signed interpretation (wraps for INT_MIN)."""

    def compute(self, a: int) -> int:
        return abs(signed_value(a, self.width))


class MinSigned(BinaryOp):
    def compute(self, a: int, b: int) -> int:
        return a if (signed_value(a, self.width)
                     <= signed_value(b, self.width)) else b


class MaxSigned(BinaryOp):
    def compute(self, a: int, b: int) -> int:
        return a if (signed_value(a, self.width)
                     >= signed_value(b, self.width)) else b


class Constant(Combinational):
    """Drives a constant value; evaluated once when the net settles."""

    def __init__(self, name: str, y: Signal, value: int) -> None:
        super().__init__(name)
        self.y = y
        self.value = value & y.mask
        y.set_driver(self)

    def emit(self, sim) -> None:
        """Drive the constant; call once after elaboration."""
        sim.drive(self.y, self.value)

    def evaluate(self, sim) -> None:  # pragma: no cover - no inputs
        self.emit(sim)

    def signals(self):
        return (self.y,)
