"""Multiplexers.

Muxes are the routing fabric the binder inserts wherever a register, SRAM
address or SRAM data input can receive values from more than one producer;
their select lines are control outputs of the FSM.
"""

from __future__ import annotations

from typing import List, Sequence

from ..sim.component import Combinational
from ..sim.errors import ElaborationError
from ..sim.signal import Signal
from .base import require_same_width

__all__ = ["Mux", "select_width"]


def select_width(n_inputs: int) -> int:
    """Bits needed to select among *n_inputs* (>= 1 even for one input)."""
    if n_inputs < 1:
        raise ValueError("a mux needs at least one input")
    return max(1, (n_inputs - 1).bit_length())


class Mux(Combinational):
    """``y = inputs[sel]``; out-of-range selects hold input 0.

    An out-of-range select can only be produced by a control-unit bug; the
    hold-input-0 behaviour keeps simulation alive so the data comparison
    reports the functional divergence (rather than crashing), matching the
    "verify by comparing results" philosophy of the infrastructure.
    """

    def __init__(self, name: str, sel: Signal,
                 inputs: Sequence[Signal], y: Signal) -> None:
        if not inputs:
            raise ElaborationError(f"{name!r}: mux needs at least one input")
        needed = select_width(len(inputs))
        if sel.width < needed:
            raise ElaborationError(
                f"{name!r}: select is {sel.width} bits but "
                f"{len(inputs)} inputs need {needed}"
            )
        super().__init__(name, inputs=(sel, *inputs))
        self.width = require_same_width(name, *inputs, y)
        self.sel = sel
        self.inputs: List[Signal] = list(inputs)
        self.y = y
        y.set_driver(self)

    def evaluate(self, sim) -> None:
        index = self.sel.value
        if index >= len(self.inputs):
            index = 0
        sim.drive(self.y, self.inputs[index].value)

    def signals(self):
        return (self.sel, *self.inputs, self.y)
