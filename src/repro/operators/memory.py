"""Memories: SRAM and ROM components backed by :class:`MemoryImage`.

The paper's designs use SRAMs for input, output and intermediate images;
their contents come from files and are compared against the golden run
after simulation.  Backing each simulated SRAM with a
:class:`~repro.util.files.MemoryImage` makes that comparison trivial and
lets the reconfiguration runtime share one image across several temporal
partitions (FDCT2's intermediate image lives across both configurations).

Timing model: reads are combinational (``dout`` follows ``addr``, like FPGA
distributed RAM), writes are synchronous (committed at the clock edge while
``we`` is high).  A written word is immediately visible on ``dout`` when
the read address matches (write-through).
"""

from __future__ import annotations

from ..sim.component import Sequential
from ..sim.errors import ElaborationError, SimulationError
from ..sim.signal import Signal
from ..util.files import MemoryImage

__all__ = ["Sram", "Rom"]


class Sram(Sequential):
    """Single-port RAM: combinational read, synchronous write.

    The component registers itself as a combinational sink of ``addr`` so
    address changes re-drive ``dout`` event-style, while the write port is
    dispatched by the clock domain only when ``we`` is armed.
    """

    def __init__(self, name: str, addr: Signal, din: Signal, dout: Signal,
                 we: Signal, image: MemoryImage) -> None:
        super().__init__(name, clock_enable=we)
        if din.width != image.width or dout.width != image.width:
            raise ElaborationError(
                f"{name!r}: data ports must match memory width "
                f"{image.width} (din={din.width}, dout={dout.width})"
            )
        if we.width != 1:
            raise ElaborationError(f"{name!r}: 'we' must be 1 bit wide")
        needed = max(1, (image.depth - 1).bit_length())
        if addr.width < needed:
            raise ElaborationError(
                f"{name!r}: address is {addr.width} bits but depth "
                f"{image.depth} needs {needed}"
            )
        self.addr = addr
        self.din = din
        self.dout = dout
        self.we = we
        self.image = image
        self.reads = 0
        self.writes = 0
        #: out-of-range combinational reads observed (see below)
        self.oob_reads = 0
        dout.set_driver(self)
        addr.add_sink(self)
        # coherence with other bus masters: if something else (a
        # co-simulated CPU, a test harness) writes the backing image at
        # the currently-read address, the combinational dout must follow
        self._sim = None
        image.watch(self._on_external_write)

    # -- combinational read path ---------------------------------------
    # The read is combinational, so the address net carries transient
    # values while an address chain settles; a transient overflow is not
    # a design bug.  Out-of-range reads therefore return 0 and are only
    # *counted* — writes, which sample a stable address at the clock
    # edge, stay strict.
    def evaluate(self, sim) -> None:
        self._sim = sim
        self.reads += 1
        sim.drive(self.dout, self._read_lenient(self.addr.value))

    def prime(self, sim) -> None:
        """Drive ``dout`` for the initial address; call at elaboration."""
        self._sim = sim
        sim.drive(self.dout, self._read_lenient(self.addr.value))

    def _on_external_write(self, address: int, value: int) -> None:
        if self._sim is not None and address == self.addr.value:
            self._sim.drive(self.dout, value)

    def detach(self) -> None:
        """Stop observing the backing image (when the port is retired,
        e.g. after a reconfiguration replaces this datapath)."""
        self.image.unwatch(self._on_external_write)
        self._sim = None

    def _read_lenient(self, address: int) -> int:
        if address >= self.image.depth:
            self.oob_reads += 1
            return 0
        return self.image.read(address)

    # -- synchronous write path ----------------------------------------
    def on_edge(self, sim) -> None:
        if not self.we.value:
            return
        address = self.addr.value
        if address >= self.image.depth:
            raise SimulationError(
                f"{self.name!r}: write address {address} exceeds depth "
                f"{self.image.depth}"
            )
        self.image.write(address, self.din.value)
        self.writes += 1
        # write-through: the combinational read of the same address must
        # observe the new word after the edge
        sim.drive(self.dout, self.image.read(address))

    def signals(self):
        return (self.addr, self.din, self.dout, self.we)


class Rom(Sequential):
    """Read-only memory with combinational read.

    Modelled as a Sequential with no writes purely so it shares the
    :meth:`prime` convention; it never arms (``clock_enable`` stays at a
    constant-0 sentinel is unnecessary — it simply has no edge behaviour).
    """

    def __init__(self, name: str, addr: Signal, dout: Signal,
                 image: MemoryImage) -> None:
        super().__init__(name, clock_enable=None)
        if dout.width != image.width:
            raise ElaborationError(
                f"{name!r}: dout must match memory width {image.width}"
            )
        self.addr = addr
        self.dout = dout
        self.image = image
        self.reads = 0
        dout.set_driver(self)
        addr.add_sink(self)
        self._sim = None
        image.watch(self._on_external_write)

    def evaluate(self, sim) -> None:
        self._sim = sim
        self.reads += 1
        sim.drive(self.dout, self.image.read(self.addr.value))

    def prime(self, sim) -> None:
        self._sim = sim
        sim.drive(self.dout, self.image.read(self.addr.value))

    def _on_external_write(self, address: int, value: int) -> None:
        if self._sim is not None and address == self.addr.value:
            self._sim.drive(self.dout, value)

    def detach(self) -> None:
        self.image.unwatch(self._on_external_write)
        self._sim = None

    def on_edge(self, sim) -> None:
        return None

    def signals(self):
        return (self.addr, self.dout)
