"""Kernel hot-spot profiler: where do the simulated cycles go?

The compiled/traced backends already maintain per-FSM-state occupancy
counts inside the generated runner (they are how ``_post_run`` computes
evaluation totals), and the coverage layer showed how to thread extra
instrumentation through codegen without touching the event kernel.
This module combines the two into a profiler: enabling
:meth:`~repro.sim.compiled.CompiledSimulator.enable_profile`
regenerates the kernel with a wall-clock accumulator per FSM state and
per fused trace segment, so after a run every simulated cycle is
attributable to a *named* piece of the design — ``S3`` or
``loop:S2->S4`` — and the wall time tells which of them the Python
kernel actually spends its time in.

:class:`KernelProfiler` is an attach/collect observer with the same
duck-typed shape as :class:`repro.obs.coverage.CoverageCollector`, so
:class:`repro.rtg.executor.RtgExecutor` drives it per configuration
with zero executor changes.  :func:`profile_case` runs one registered
benchmark under it and returns a :class:`ProfileReport`, which renders
a terminal table and a collapsed-stack file (``frame;frame count``
lines) that flamegraph.pl / speedscope / inferno accept directly.

Cycle attribution is exact: the per-state counts cover every fast-path
cycle, and fused-trace cycles are redistributed to their member states
(one cycle per state per iteration), so the attributed total equals
the kernel's cycle count whenever the fast path ran.  A fallback to
the event kernel shows up as a low attribution ratio and is reported,
never silently absorbed.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

__all__ = ["ProfileError", "KernelProfiler", "ProfileFrame",
           "ProfileReport", "profile_case"]


class ProfileError(RuntimeError):
    """The request cannot be profiled (unknown case, no compiled
    kernel, event-kernel fallback with nothing attributed)."""


class KernelProfiler:
    """Attach/collect observer enabling profiled codegen per design.

    Mirrors the :class:`~repro.obs.coverage.CoverageCollector` protocol
    (``attach(design)`` before a configuration runs, ``collect(design)``
    after), so it plugs into :class:`repro.rtg.executor.RtgExecutor`'s
    ``coverage`` seat.  Snapshots merge by configuration name across
    reconfigurations.
    """

    def __init__(self) -> None:
        #: configuration name -> {"states", "traces", "total_cycles"}
        self.configurations: Dict[str, Dict[str, Any]] = {}
        #: human-readable reasons any configuration escaped profiling
        self.fallbacks: List[str] = []

    # ------------------------------------------------------------------
    @staticmethod
    def _name(design) -> str:
        datapath = getattr(design, "datapath", None)
        return getattr(datapath, "name", None) \
            or getattr(design.sim, "name", "design")

    def attach(self, design) -> None:
        from ..sim.compiled import CompiledSimulator

        sim = design.sim
        if isinstance(sim, CompiledSimulator):
            sim.enable_profile()
        else:
            self.fallbacks.append(
                f"{self._name(design)}: backend {type(sim).__name__} "
                f"has no compiled kernel to instrument")

    def collect(self, design) -> None:
        from ..sim.compiled import CompiledSimulator

        sim = design.sim
        if not isinstance(sim, CompiledSimulator):
            return
        if sim.fallback_reason is not None:
            self.fallbacks.append(
                f"{self._name(design)}: fell back to the event kernel "
                f"({sim.fallback_reason})")
        data = sim.profile_data()
        if not data["states"] and not data["traces"]:
            return
        slot = self.configurations.setdefault(
            self._name(design),
            {"states": {}, "traces": {}, "total_cycles": 0})
        for state, entry in data["states"].items():
            into = slot["states"].setdefault(
                state, {"cycles": 0, "wall_ns": 0})
            into["cycles"] += entry["cycles"]
            into["wall_ns"] += entry["wall_ns"]
        for name, entry in data["traces"].items():
            into = slot["traces"].setdefault(
                name, {"cycles": 0, "wall_ns": 0,
                       "states": list(entry["states"]),
                       "kind": entry["kind"],
                       "cycles_per_iteration":
                           entry["cycles_per_iteration"]})
            into["cycles"] += entry["cycles"]
            into["wall_ns"] += entry["wall_ns"]
        slot["total_cycles"] += data["total_cycles"]

    # ------------------------------------------------------------------
    def report(self, *, case: str, backend: str, total_cycles: int,
               wall_seconds: float = 0.0) -> "ProfileReport":
        """Fold every collected configuration into one report.

        ``total_cycles`` is the executor-reported cycle total — the
        denominator of the attribution ratio, so event-kernel cycles
        the profiler never saw lower the score instead of hiding.
        """
        if not self.configurations:
            detail = "; ".join(self.fallbacks) \
                or "no kernel cycles were attributed"
            raise ProfileError(f"nothing to profile for {case!r}: "
                               f"{detail}")
        frames: List[ProfileFrame] = []
        attributed = 0
        wall_ns = 0
        multi = len(self.configurations) > 1
        for cfg_name in sorted(self.configurations):
            snapshot = self.configurations[cfg_name]
            root: Tuple[str, ...] = (cfg_name,) if multi else ()
            residual = {state: entry["cycles"]
                        for state, entry in snapshot["states"].items()}
            for trace_name in sorted(snapshot["traces"]):
                entry = snapshot["traces"][trace_name]
                span = entry["cycles_per_iteration"] \
                    or len(entry["states"]) or 1
                iterations = entry["cycles"] // span
                frames.append(ProfileFrame(
                    path=root + (trace_name,), kind="trace",
                    cycles=entry["cycles"], wall_ns=entry["wall_ns"]))
                wall_ns += entry["wall_ns"]
                for state in entry["states"]:
                    frames.append(ProfileFrame(
                        path=root + (trace_name, state),
                        kind="trace-state", cycles=iterations,
                        wall_ns=0))
                    residual[state] = residual.get(state, 0) - iterations
            for state in sorted(snapshot["states"]):
                cycles = max(residual.get(state, 0), 0)
                state_wall = snapshot["states"][state]["wall_ns"]
                if cycles or state_wall:
                    frames.append(ProfileFrame(
                        path=root + (state,), kind="state",
                        cycles=cycles, wall_ns=state_wall))
                wall_ns += state_wall
            attributed += sum(entry["cycles"]
                              for entry in snapshot["states"].values())
        return ProfileReport(
            case=case, backend=backend, total_cycles=total_cycles,
            attributed_cycles=attributed, wall_ns=wall_ns,
            wall_seconds=wall_seconds, frames=frames,
            fallbacks=list(self.fallbacks))


@dataclass
class ProfileFrame:
    """One attribution frame: a state, a fused trace, or a state
    inside a fused trace (``path`` is the stack under the case root)."""

    path: Tuple[str, ...]
    kind: str  # "state" | "trace" | "trace-state"
    cycles: int
    wall_ns: int


@dataclass
class ProfileReport:
    """Everything :func:`profile_case` learned about one benchmark."""

    case: str
    backend: str
    #: executor-reported cycles (attribution denominator)
    total_cycles: int
    #: cycles the instrumented kernels accounted to named frames
    attributed_cycles: int
    #: wall time accounted to frames by the in-kernel clocks
    wall_ns: int
    #: end-to-end wall of the profiled execution
    wall_seconds: float
    frames: List[ProfileFrame] = field(default_factory=list)
    fallbacks: List[str] = field(default_factory=list)

    @property
    def attribution(self) -> float:
        """Fraction of simulated cycles attributed to named frames."""
        if self.total_cycles <= 0:
            return 1.0 if self.attributed_cycles else 0.0
        return self.attributed_cycles / self.total_cycles

    # ------------------------------------------------------------------
    def collapsed_lines(self) -> List[str]:
        """Flamegraph collapsed-stack lines, cycle-weighted.

        Leaf frames only (a trace's cycles are the sum of its member
        states' lines, so emitting both would double the trace), each
        ``case;frame[;frame] <cycles>``.
        """
        lines = []
        for frame in self.frames:
            if frame.kind == "trace" or frame.cycles <= 0:
                continue
            stack = ";".join((self.case,) + frame.path)
            lines.append(f"{stack} {frame.cycles}")
        return lines

    def write_collapsed(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(self.collapsed_lines()) + "\n")
        return path

    def as_dict(self) -> Dict[str, Any]:
        return {
            "case": self.case,
            "backend": self.backend,
            "total_cycles": self.total_cycles,
            "attributed_cycles": self.attributed_cycles,
            "attribution": round(self.attribution, 6),
            "wall_ns": self.wall_ns,
            "wall_seconds": round(self.wall_seconds, 6),
            "fallbacks": self.fallbacks,
            "frames": [{"path": list(frame.path), "kind": frame.kind,
                        "cycles": frame.cycles,
                        "wall_ns": frame.wall_ns}
                       for frame in self.frames],
        }

    def write_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return path

    def format(self, top: int = 15) -> str:
        """Terminal table: hottest frames by cycles, wall alongside."""
        rows = [frame for frame in self.frames
                if frame.kind != "trace-state"]
        rows.sort(key=lambda frame: (-frame.cycles, -frame.wall_ns))
        total = max(self.total_cycles, 1)
        total_wall = max(self.wall_ns, 1)
        lines = [
            f"kernel profile: {self.case} ({self.backend}) — "
            f"{self.total_cycles} cycle(s), "
            f"{self.attribution:.1%} attributed, "
            f"{self.wall_ns / 1e6:.1f} ms in-kernel wall",
            f"  {'frame':<34} {'cycles':>12} {'cyc%':>6} "
            f"{'wall ms':>9} {'wall%':>6}",
        ]
        for frame in rows[:top]:
            label = "/".join(frame.path)
            lines.append(
                f"  {label:<34} {frame.cycles:>12} "
                f"{frame.cycles / total:>6.1%} "
                f"{frame.wall_ns / 1e6:>9.2f} "
                f"{frame.wall_ns / total_wall:>6.1%}")
        if len(rows) > top:
            rest = rows[top:]
            lines.append(
                f"  {'… ' + str(len(rest)) + ' more':<34} "
                f"{sum(frame.cycles for frame in rest):>12}")
        for reason in self.fallbacks:
            lines.append(f"  [fallback] {reason}")
        return "\n".join(lines)


def profile_case(name: str, *, size: Optional[Mapping[str, int]] = None,
                 seed: int = 0, backend: str = "traced",
                 fsm_mode: str = "generated",
                 max_cycles: int = 50_000_000) -> ProfileReport:
    """Profile one registered benchmark app end to end.

    Compiles the case, runs its RTG with profiled kernels (golden model
    and memory comparison are skipped — this measures the simulator,
    not the verdict) and returns the attribution report.
    """
    from ..apps.registry import CASE_BUILDERS, suite_case
    from ..core.verification import prepare_images
    from ..rtg.context import ReconfigurationContext
    from ..rtg.executor import RtgExecutor

    if name not in CASE_BUILDERS:
        raise ProfileError(f"unknown case {name!r} "
                           f"(known: {sorted(CASE_BUILDERS)})")
    if backend not in ("compiled", "traced"):
        raise ProfileError(
            f"profiling instruments the compiled kernel family; "
            f"backend must be 'compiled' or 'traced', got {backend!r}")
    try:
        case = suite_case(name, **dict(size or {}))
    except TypeError as exc:
        raise ProfileError(f"bad size options for {name!r}: {exc}") \
            from None
    design = case.compile()
    inputs = case.inputs(seed) if case.inputs is not None else None
    profiler = KernelProfiler()
    context = ReconfigurationContext.from_rtg(
        design.rtg, initial=prepare_images(design, inputs))
    executor = RtgExecutor(
        design.rtg, context, fsm_mode=fsm_mode, backend=backend,
        max_cycles_per_configuration=case.max_cycles or max_cycles,
        coverage=profiler)
    started = time.perf_counter()
    rtg_result = executor.run()
    wall = time.perf_counter() - started
    return profiler.report(case=name, backend=backend,
                           total_cycles=rtg_result.total_cycles,
                           wall_seconds=wall)
