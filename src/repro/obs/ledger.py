"""The run ledger: every suite/flow/fuzz/bench run as a database row.

The paper's workflow re-verifies the whole benchmark suite after every
compiler change — which makes each run a *data point*, not a one-off.
The per-run observability layer (:mod:`repro.obs.trace`,
:mod:`repro.obs.metrics`, :mod:`repro.obs.coverage`) computes timings,
counters and coverage and then throws them away with the process; this
module persists them, so a kernel slowdown or a coverage drop *between*
commits is a query instead of a manual diff of ``BENCH_suite.json``.

Design:

* **stdlib ``sqlite3`` only**, WAL journal mode, ``busy_timeout`` set —
  concurrent recorders (a suite run and a fuzz campaign finishing at
  the same time, CI matrix jobs sharing a volume) serialize cleanly;
* **schema-versioned** with forward migration hooks: opening an old
  ledger upgrades it in place and never drops existing rows
  (:data:`SCHEMA_VERSION`, ``_MIGRATIONS``);
* **harvest, don't instrument**: like :mod:`repro.obs.metrics`, the
  recorders take finished report objects (duck-typed — this module
  imports nothing from ``repro.core``/``repro.fuzz``) and write one
  transaction per run, so the hot simulation paths never see the
  database;
* **provenance per run**: git revision, python version, hostname and
  the recording argv, so any row can be traced back to a commit.

The consumers are :mod:`repro.obs.regress` (the regression sentinel)
and :mod:`repro.obs.dashboard` (the static HTML dashboard and the
Prometheus textfile exporter), all reachable as ``python -m repro obs``.
"""

from __future__ import annotations

import functools
import json
import os
import socket
import sqlite3
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (Any, Dict, List, Mapping, Optional, Sequence, Tuple,
                    Union)

__all__ = ["SCHEMA_VERSION", "LedgerError", "Ledger", "RunRow", "CaseRow",
           "CoverageRow", "CacheRow", "FuzzRow", "FaultRow",
           "ledger_from_env", "LEDGER_ENV"]

#: current on-disk schema generation (see ``_MIGRATIONS`` for history)
SCHEMA_VERSION = 4

#: environment variable naming the ledger file recorders should append to
LEDGER_ENV = "REPRO_LEDGER"


class LedgerError(RuntimeError):
    """The ledger file is unusable (future schema, corrupt metadata)."""


# ----------------------------------------------------------------------
# Row types — plain data, no live database handles
# ----------------------------------------------------------------------
@dataclass
class RunRow:
    """One recorded run (a suite, flow, fuzz campaign, bench or verify)."""

    run_id: int
    kind: str
    started_at: float
    wall_seconds: float
    passed: bool
    backend: Optional[str]
    jobs: Optional[int]
    git_rev: Optional[str]
    python: Optional[str]
    hostname: Optional[str]
    argv: Optional[str]
    extra: Dict[str, Any]


@dataclass
class CaseRow:
    """Per-app timing of one run under one backend at one size."""

    run_id: int
    app: str
    backend: str
    size: str
    sim_seconds: Optional[float]
    compile_seconds: Optional[float]
    cycles: Optional[int]
    evaluations: Optional[int]
    passed: bool
    cached: bool
    #: stimulus sets advanced in lockstep (None/1 = plain serial run)
    batch_size: Optional[int] = None
    #: amortized simulation seconds per stimulus set in a batched run
    lane_seconds: Optional[float] = None


@dataclass
class CoverageRow:
    """Functional coverage of one scope (an app, or an aggregate)."""

    run_id: int
    scope: str
    state_coverage: Optional[float]
    transition_coverage: Optional[float]
    operator_coverage: Optional[float]


@dataclass
class CacheRow:
    """Hit/miss tallies of one cache (artifact or kernel) in one run."""

    run_id: int
    cache: str
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class FuzzRow:
    """One outcome-classification tally of a fuzz campaign."""

    run_id: int
    kind: str
    count: int


@dataclass
class FaultRow:
    """One classified fault-injection run of a campaign.

    ``descriptor`` is the full replayable fault descriptor (the
    JSON-decoded :meth:`FaultDescriptor.to_dict` form), so a hang row
    pulled out of the ledger reproduces with ``repro inject --replay``.
    """

    run_id: int
    fault_id: str
    kind: str       # stuck | reg_flip | mem_flip | none (baseline)
    target: str
    verdict: str    # masked | sdc | hang | crash
    mechanism: Optional[str]
    cycles: Optional[int]
    seconds: Optional[float]
    note: Optional[str]
    descriptor: Optional[Dict[str, Any]]


# ----------------------------------------------------------------------
# Schema + migrations
# ----------------------------------------------------------------------
# v1 (historical): meta, runs (without argv), case_runs, coverage_runs.
# v2: + runs.argv column, + cache_runs, + fuzz_runs.
# v3: + case_runs.batch_size, case_runs.lane_seconds (batched execution).
# v4: + fault_runs (per-fault verdicts of injection campaigns).
_SCHEMA_V4 = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id       INTEGER PRIMARY KEY AUTOINCREMENT,
    kind         TEXT NOT NULL,
    started_at   REAL NOT NULL,
    wall_seconds REAL,
    passed       INTEGER,
    backend      TEXT,
    jobs         INTEGER,
    git_rev      TEXT,
    python       TEXT,
    hostname     TEXT,
    argv         TEXT,
    extra        TEXT
);
CREATE TABLE IF NOT EXISTS case_runs (
    id              INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id          INTEGER NOT NULL REFERENCES runs(run_id),
    app             TEXT NOT NULL,
    backend         TEXT NOT NULL,
    size            TEXT NOT NULL DEFAULT '',
    sim_seconds     REAL,
    compile_seconds REAL,
    cycles          INTEGER,
    evaluations     INTEGER,
    passed          INTEGER,
    cached          INTEGER DEFAULT 0,
    batch_size      INTEGER,
    lane_seconds    REAL
);
CREATE TABLE IF NOT EXISTS coverage_runs (
    id                  INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id              INTEGER NOT NULL REFERENCES runs(run_id),
    scope               TEXT NOT NULL,
    state_coverage      REAL,
    transition_coverage REAL,
    operator_coverage   REAL
);
CREATE TABLE IF NOT EXISTS cache_runs (
    id     INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id INTEGER NOT NULL REFERENCES runs(run_id),
    cache  TEXT NOT NULL,
    hits   INTEGER NOT NULL,
    misses INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS fuzz_runs (
    id     INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id INTEGER NOT NULL REFERENCES runs(run_id),
    kind   TEXT NOT NULL,
    count  INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS fault_runs (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id     INTEGER NOT NULL REFERENCES runs(run_id),
    fault_id   TEXT NOT NULL,
    kind       TEXT NOT NULL,
    target     TEXT NOT NULL,
    verdict    TEXT NOT NULL,
    mechanism  TEXT,
    cycles     INTEGER,
    seconds    REAL,
    note       TEXT,
    descriptor TEXT
);
CREATE INDEX IF NOT EXISTS idx_case_runs_key
    ON case_runs (app, backend, size, run_id);
CREATE INDEX IF NOT EXISTS idx_runs_kind ON runs (kind, run_id);
CREATE INDEX IF NOT EXISTS idx_fault_runs_run
    ON fault_runs (run_id, verdict);
"""


def _execute_script(conn: sqlite3.Connection, script: str) -> None:
    """Run a multi-statement DDL script inside the caller's transaction.

    ``Connection.executescript`` force-commits any open transaction
    before it runs, which would tear holes in the ``BEGIN IMMEDIATE``
    bootstrap/migration lock; our scripts are plain ``;``-separated
    statements with no string literals, so a split is exact."""
    for statement in script.split(";"):
        if statement.strip():
            conn.execute(statement)


def _migrate_1_to_2(conn: sqlite3.Connection) -> None:
    """v1 ledgers predate provenance argv and the cache/fuzz tables."""
    columns = {row[1] for row in conn.execute("PRAGMA table_info(runs)")}
    if "argv" not in columns:
        conn.execute("ALTER TABLE runs ADD COLUMN argv TEXT")
    _execute_script(conn, """
        CREATE TABLE IF NOT EXISTS cache_runs (
            id     INTEGER PRIMARY KEY AUTOINCREMENT,
            run_id INTEGER NOT NULL REFERENCES runs(run_id),
            cache  TEXT NOT NULL,
            hits   INTEGER NOT NULL,
            misses INTEGER NOT NULL
        );
        CREATE TABLE IF NOT EXISTS fuzz_runs (
            id     INTEGER PRIMARY KEY AUTOINCREMENT,
            run_id INTEGER NOT NULL REFERENCES runs(run_id),
            kind   TEXT NOT NULL,
            count  INTEGER NOT NULL
        );
        CREATE INDEX IF NOT EXISTS idx_case_runs_key
            ON case_runs (app, backend, size, run_id);
        CREATE INDEX IF NOT EXISTS idx_runs_kind ON runs (kind, run_id);
    """)


def _migrate_2_to_3(conn: sqlite3.Connection) -> None:
    """v2 ledgers predate batched execution's per-case batch columns."""
    columns = {row[1]
               for row in conn.execute("PRAGMA table_info(case_runs)")}
    if "batch_size" not in columns:
        conn.execute("ALTER TABLE case_runs ADD COLUMN batch_size INTEGER")
    if "lane_seconds" not in columns:
        conn.execute("ALTER TABLE case_runs ADD COLUMN lane_seconds REAL")


def _migrate_3_to_4(conn: sqlite3.Connection) -> None:
    """v3 ledgers predate fault-injection campaigns (fault_runs)."""
    _execute_script(conn, """
        CREATE TABLE IF NOT EXISTS fault_runs (
            id         INTEGER PRIMARY KEY AUTOINCREMENT,
            run_id     INTEGER NOT NULL REFERENCES runs(run_id),
            fault_id   TEXT NOT NULL,
            kind       TEXT NOT NULL,
            target     TEXT NOT NULL,
            verdict    TEXT NOT NULL,
            mechanism  TEXT,
            cycles     INTEGER,
            seconds    REAL,
            note       TEXT,
            descriptor TEXT
        );
        CREATE INDEX IF NOT EXISTS idx_fault_runs_run
            ON fault_runs (run_id, verdict);
    """)


#: migration hooks: ``_MIGRATIONS[v]`` upgrades a ledger from schema v
#: to v+1; applied in sequence until :data:`SCHEMA_VERSION` is reached
_MIGRATIONS = {
    1: _migrate_1_to_2,
    2: _migrate_2_to_3,
    3: _migrate_3_to_4,
}


# ----------------------------------------------------------------------
# Provenance
# ----------------------------------------------------------------------
_GIT_REV: Optional[str] = None


def _git_revision() -> Optional[str]:
    """Short git revision of the working tree, cached per process."""
    global _GIT_REV
    if _GIT_REV is None:
        try:
            _GIT_REV = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=5,
            ).stdout.strip() or "unknown"
        except (OSError, subprocess.SubprocessError):
            _GIT_REV = "unknown"
    return None if _GIT_REV == "unknown" else _GIT_REV


def _provenance() -> Dict[str, Optional[str]]:
    try:
        hostname = socket.gethostname()
    except OSError:
        hostname = None
    return {
        "git_rev": _git_revision(),
        "python": "%d.%d.%d" % sys.version_info[:3],
        "hostname": hostname,
    }


def _retry_once(method):
    """Retry a recorder exactly once when SQLite reports SQLITE_BUSY.

    The ``busy_timeout`` pragma already makes SQLite wait for a lock,
    but it gives up (a) when the holder's transaction outlives the
    timeout or (b) on the unwaitable ``database is locked`` raised
    mid-upgrade from a read to a write lock under contention.  Both are
    transient for our append-only recorders — a second attempt starts a
    fresh transaction with a fresh wait budget — so one retry converts
    the practical concurrent-writer failure mode (two CI jobs, or a
    serve daemon and a suite run, harvesting into one ledger) into a
    short delay.  Anything still failing after the retry propagates.
    """
    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        try:
            return method(self, *args, **kwargs)
        except sqlite3.OperationalError as exc:
            message = str(exc).lower()
            if "locked" not in message and "busy" not in message:
                raise
            time.sleep(0.05)
            return method(self, *args, **kwargs)
    return wrapper


def _size_key(size: Optional[Mapping[str, Any]]) -> str:
    """Canonical text key for a sizing mapping (order-independent)."""
    if not size:
        return ""
    return json.dumps({str(k): v for k, v in size.items()}, sort_keys=True)


# ----------------------------------------------------------------------
# The ledger
# ----------------------------------------------------------------------
class Ledger:
    """An SQLite-backed, append-mostly record of every run.

    Opening a ledger creates or migrates the schema.  All ``record_*``
    methods are single transactions, safe against concurrent recorders
    (WAL mode + busy timeout).  Query methods return plain row
    dataclasses, never live cursors.
    """

    def __init__(self, path: Union[str, Path], *,
                 timeout: float = 30.0) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path), timeout=timeout,
                                     check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
        except sqlite3.DatabaseError:
            pass  # WAL unsupported on this filesystem: rollback journal
        self._conn.execute("PRAGMA busy_timeout=%d" % int(timeout * 1000))
        self._ensure_schema()

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "Ledger":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Ledger({str(self.path)!r})"

    # -- schema ---------------------------------------------------------
    def _ensure_schema(self) -> None:
        conn = self._conn
        # BEGIN IMMEDIATE serialises bootstrap across processes: the
        # exists-check, the table creation and the version-row insert
        # happen under one write lock, so a second opener either waits
        # (busy_timeout) or sees the schema complete — never the
        # half-created window between them.  executescript cannot be
        # used here: it force-commits first, reopening that window.
        conn.execute("BEGIN IMMEDIATE")
        try:
            tables = {row[0] for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table'")}
            if "meta" not in tables:
                _execute_script(conn, _SCHEMA_V4)
                conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) "
                    "VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),))
            else:
                version = self.schema_version()
                if version > SCHEMA_VERSION:
                    raise LedgerError(
                        f"{self.path}: ledger schema v{version} is newer "
                        f"than this code (v{SCHEMA_VERSION}); upgrade "
                        f"repro")
                while version < SCHEMA_VERSION:
                    migrate = _MIGRATIONS.get(version)
                    if migrate is None:
                        raise LedgerError(
                            f"{self.path}: no migration from schema "
                            f"v{version}")
                    migrate(conn)
                    version += 1
                    conn.execute(
                        "INSERT OR REPLACE INTO meta (key, value) "
                        "VALUES ('schema_version', ?)", (str(version),))
        except BaseException:
            if conn.in_transaction:
                conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    def schema_version(self) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key='schema_version'").fetchone()
        if row is None:
            raise LedgerError(f"{self.path}: meta table has no "
                              f"schema_version")
        try:
            return int(row[0])
        except ValueError as exc:
            raise LedgerError(
                f"{self.path}: bad schema_version {row[0]!r}") from exc

    # ------------------------------------------------------------------
    # Recorders — duck-typed harvesters, one transaction per run
    # ------------------------------------------------------------------
    def _insert_run(self, conn: sqlite3.Connection, kind: str, *,
                    wall_seconds: Optional[float], passed: bool,
                    backend: Optional[str] = None,
                    jobs: Optional[int] = None,
                    argv: Optional[Sequence[str]] = None,
                    extra: Optional[Mapping[str, Any]] = None) -> int:
        prov = _provenance()
        cursor = conn.execute(
            "INSERT INTO runs (kind, started_at, wall_seconds, passed, "
            "backend, jobs, git_rev, python, hostname, argv, extra) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (kind, time.time(), wall_seconds, int(bool(passed)), backend,
             jobs, prov["git_rev"], prov["python"], prov["hostname"],
             " ".join(argv) if argv else None,
             json.dumps(dict(extra), default=str) if extra else None))
        return int(cursor.lastrowid)

    def _insert_case(self, conn: sqlite3.Connection, run_id: int,
                     app: str, backend: str, size: str, *,
                     sim_seconds: Optional[float] = None,
                     compile_seconds: Optional[float] = None,
                     cycles: Optional[int] = None,
                     evaluations: Optional[int] = None,
                     passed: bool = True, cached: bool = False,
                     batch_size: Optional[int] = None,
                     lane_seconds: Optional[float] = None) -> None:
        conn.execute(
            "INSERT INTO case_runs (run_id, app, backend, size, "
            "sim_seconds, compile_seconds, cycles, evaluations, passed, "
            "cached, batch_size, lane_seconds) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (run_id, app, backend, size, sim_seconds, compile_seconds,
             cycles, evaluations, int(bool(passed)), int(bool(cached)),
             batch_size, lane_seconds))

    def _insert_coverage(self, conn: sqlite3.Connection, run_id: int,
                         scope: str, coverage) -> None:
        """*coverage* is any object with the three ``*_coverage`` props."""
        conn.execute(
            "INSERT INTO coverage_runs (run_id, scope, state_coverage, "
            "transition_coverage, operator_coverage) VALUES (?, ?, ?, ?, ?)",
            (run_id, scope,
             float(coverage.state_coverage),
             float(coverage.transition_coverage),
             float(coverage.operator_coverage)))

    def _insert_cache(self, conn: sqlite3.Connection, run_id: int,
                      cache: str, hits: int, misses: int) -> None:
        if hits or misses:
            conn.execute(
                "INSERT INTO cache_runs (run_id, cache, hits, misses) "
                "VALUES (?, ?, ?, ?)", (run_id, cache, hits, misses))

    def _kernel_cache_stats(self) -> Optional[Tuple[int, int]]:
        """(hits, misses) of the process-wide kernel cache, if any."""
        try:
            from ..core.kernelcache import default_cache

            info = default_cache().summary()
        except Exception:  # noqa: BLE001 - provenance, never fatal
            return None
        hits = int(info.get("memory_hits", 0)) + int(info.get("disk_hits", 0))
        return hits, int(info.get("misses", 0))

    # ------------------------------------------------------------------
    @_retry_once
    def record_suite(self, report, *, suite: str = "suite",
                     sizes: Optional[Mapping[str, Mapping[str, Any]]] = None,
                     cache=None,
                     argv: Optional[Sequence[str]] = None) -> int:
        """Record one :class:`repro.core.SuiteReport`; returns run id.

        *sizes* maps app name to its sizing parameters (the suite knows
        them as ``SuiteCase.params``); *cache* is the
        :class:`~repro.core.cache.ArtifactCache` used, if any.
        """
        sizes = sizes or {}
        with self._conn as conn:
            run_id = self._insert_run(
                conn, "suite", wall_seconds=report.wall_seconds,
                passed=report.passed, backend=report.backend,
                jobs=report.jobs, argv=argv,
                extra={"suite": suite, "cases": len(report.results),
                       "failures": len(report.failures)})
            for result in report.results:
                verification = result.verification
                # batched suite cases carry a BatchVerificationResult,
                # which quacks like VerificationResult plus batch stats
                batch_size = getattr(verification, "batch_size", None)
                self._insert_case(
                    conn, run_id, result.case, report.backend,
                    _size_key(sizes.get(result.case)),
                    sim_seconds=(verification.simulation_seconds
                                 if verification is not None else None),
                    compile_seconds=result.compile_seconds,
                    cycles=(verification.cycles
                            if verification is not None else None),
                    evaluations=(verification.evaluations
                                 if verification is not None else None),
                    passed=result.passed, cached=result.cached,
                    batch_size=batch_size,
                    lane_seconds=(verification.lane_seconds
                                  if batch_size else None))
                if verification is not None \
                        and verification.coverage is not None:
                    self._insert_coverage(conn, run_id, result.case,
                                          verification.coverage)
            if report.coverage is not None:
                self._insert_coverage(conn, run_id, "aggregate",
                                      report.coverage)
            if cache is not None:
                self._insert_cache(conn, run_id, "artifact",
                                   cache.hits, cache.misses)
            elif report.cache_hits or report.cache_misses:
                self._insert_cache(conn, run_id, "artifact",
                                   report.cache_hits, report.cache_misses)
            kernel = self._kernel_cache_stats()
            if kernel is not None:
                self._insert_cache(conn, run_id, "kernel", *kernel)
            return run_id

    @_retry_once
    def record_verification(self, result, *, app: Optional[str] = None,
                            size: Optional[Mapping[str, Any]] = None,
                            compile_seconds: Optional[float] = None,
                            argv: Optional[Sequence[str]] = None) -> int:
        """Record one standalone :class:`VerificationResult`."""
        app = app or result.design
        with self._conn as conn:
            run_id = self._insert_run(
                conn, "verify",
                wall_seconds=result.golden_seconds
                + result.simulation_seconds,
                passed=result.passed, backend=result.backend, argv=argv,
                extra={"design": result.design,
                       "reconfigurations": result.reconfigurations})
            self._insert_case(
                conn, run_id, app, result.backend, _size_key(size),
                sim_seconds=result.simulation_seconds,
                compile_seconds=compile_seconds, cycles=result.cycles,
                evaluations=result.evaluations, passed=result.passed)
            if result.coverage is not None:
                self._insert_coverage(conn, run_id, app, result.coverage)
            return run_id

    @_retry_once
    def record_batch_verification(self, result, *,
                                  app: Optional[str] = None,
                                  size: Optional[Mapping[str, Any]] = None,
                                  compile_seconds: Optional[float] = None,
                                  argv: Optional[Sequence[str]] = None
                                  ) -> int:
        """Record one :class:`BatchVerificationResult` as a single case
        row carrying the batch columns (total seconds in
        ``sim_seconds``, amortized per-lane seconds in
        ``lane_seconds``)."""
        app = app or result.design
        with self._conn as conn:
            run_id = self._insert_run(
                conn, "verify",
                wall_seconds=result.golden_seconds
                + result.simulation_seconds,
                passed=result.passed, backend=result.backend, argv=argv,
                extra={"design": result.design,
                       "batch_size": result.batch_size,
                       "batched": result.batched,
                       "lanes_converged": result.lanes_converged,
                       "elaborations": result.elaborations})
            self._insert_case(
                conn, run_id, app, result.backend, _size_key(size),
                sim_seconds=result.simulation_seconds,
                compile_seconds=compile_seconds,
                cycles=sum(lane.cycles for lane in result.lanes),
                evaluations=sum(lane.evaluations for lane in result.lanes),
                passed=result.passed,
                batch_size=result.batch_size,
                lane_seconds=result.lane_seconds)
            return run_id

    @_retry_once
    def record_flow(self, report, *, app: str, backend: str = "event",
                    size: Optional[Mapping[str, Any]] = None,
                    argv: Optional[Sequence[str]] = None) -> int:
        """Record one :class:`repro.core.FlowReport` (Figure 1 flow)."""
        stage_seconds = {stage.name: stage.seconds
                         for stage in report.stages}
        rtg = report.context.get("rtg_run")
        passed = bool(report.context.get("passed"))
        with self._conn as conn:
            run_id = self._insert_run(
                conn, "flow", wall_seconds=report.total_seconds,
                passed=passed, backend=backend, argv=argv,
                extra={"stage_seconds": {name: round(seconds, 6)
                                         for name, seconds
                                         in stage_seconds.items()}})
            self._insert_case(
                conn, run_id, app, backend, _size_key(size),
                sim_seconds=stage_seconds.get("simulate"),
                compile_seconds=stage_seconds.get("compile"),
                cycles=rtg.total_cycles if rtg is not None else None,
                evaluations=(rtg.total_evaluations
                             if rtg is not None else None),
                passed=passed)
            coverage = report.context.get("coverage")
            if coverage is not None:
                self._insert_coverage(conn, run_id, app, coverage)
            return run_id

    @_retry_once
    def record_fuzz(self, report,
                    argv: Optional[Sequence[str]] = None) -> int:
        """Record one :class:`repro.fuzz.CampaignReport`."""
        extra: Dict[str, Any] = {"seed": report.seed}
        items = getattr(report, "coverage_items", None)
        if items:
            extra["coverage_items"] = len(items)
            extra["new_coverage_seeds"] = \
                len(getattr(report, "new_coverage_seeds", ()))
        with self._conn as conn:
            run_id = self._insert_run(
                conn, "fuzz", wall_seconds=report.wall_seconds,
                passed=report.passed, jobs=report.jobs, argv=argv,
                extra=extra)
            conn.execute(
                "INSERT INTO fuzz_runs (run_id, kind, count) "
                "VALUES (?, 'iterations', ?)", (run_id, report.iterations))
            for kind in sorted(report.counts):
                conn.execute(
                    "INSERT INTO fuzz_runs (run_id, kind, count) "
                    "VALUES (?, ?, ?)", (run_id, kind, report.counts[kind]))
            return run_id

    @_retry_once
    def record_bench(self, data: Mapping[str, Any],
                     argv: Optional[Sequence[str]] = None) -> int:
        """Record one ``BENCH_suite.json`` payload (see the E4 bench).

        Each app lands as one case row per measured backend, keyed by
        the bench sizing, so bench runs build the same rolling history
        the sentinel reads.
        """
        sizes = data.get("sizes", {})
        suite = data.get("suite", {})
        with self._conn as conn:
            run_id = self._insert_run(
                conn, "bench",
                wall_seconds=suite.get("event_serial_wall_seconds"),
                passed=True, argv=argv,
                extra={"quick": bool(data.get("quick")), "suite": suite})
            for app, case in data.get("cases", {}).items():
                size = _size_key(sizes.get(app))
                for backend in ("event", "compiled", "traced", "batched"):
                    seconds = case.get(f"{backend}_sim_seconds")
                    if seconds is None:
                        continue
                    if backend == "batched":
                        # bench batched seconds are already amortized
                        # per stimulus set
                        self._insert_case(
                            conn, run_id, app, backend, size,
                            sim_seconds=float(seconds),
                            batch_size=case.get("batch_size"),
                            lane_seconds=float(seconds))
                    else:
                        self._insert_case(conn, run_id, app, backend, size,
                                          sim_seconds=float(seconds))
            return run_id

    @_retry_once
    def record_injection_campaign(self, report, *,
                                  size: Optional[Mapping[str, Any]] = None,
                                  argv: Optional[Sequence[str]] = None
                                  ) -> int:
        """Record one :class:`repro.inject.CampaignReport` (duck-typed).

        One ``inject`` run row carries the verdict tallies; every
        classified injection (plus the fault-free baseline) lands as a
        ``fault_runs`` row with its full replayable descriptor.  The
        baseline timing is also written as a case row so the campaign
        appears in per-app views — the regression sentinel excludes
        ``inject``-kind rows from its perf baselines.
        """
        tally = report.tally()
        baseline = report.baseline
        extra: Dict[str, Any] = {
            "app": report.app, "seed": report.seed,
            "cycle_budget": report.cycle_budget,
            "faults": len(report.results), "verdicts": tally,
        }
        if baseline is not None:
            extra["baseline_cycles"] = baseline.cycles
        with self._conn as conn:
            run_id = self._insert_run(
                conn, "inject", wall_seconds=report.wall_seconds,
                passed=True, backend=report.backend, jobs=report.jobs,
                argv=argv, extra=extra)
            if baseline is not None:
                self._insert_case(
                    conn, run_id, report.app, report.backend,
                    _size_key(size), sim_seconds=baseline.seconds,
                    cycles=baseline.cycles, passed=True)
                self._insert_fault(conn, run_id, baseline)
            for result in report.results:
                self._insert_fault(conn, run_id, result)
            return run_id

    @_retry_once
    def record_triage(self, record: Mapping[str, Any], *,
                      wall_seconds: float = 0.0,
                      argv: Optional[Sequence[str]] = None) -> int:
        """Record one divergence-triage verdict (duck-typed dict).

        *record* is a :class:`repro.obs.triage.TriageRecord` dict — the
        whole machine-readable triage record rides in the run row's
        ``extra`` column (no schema bump needed), so dashboards and
        ``repro obs report`` can surface first-divergent cycles and
        suspect nets alongside the runs that produced them.
        """
        record = dict(record)
        with self._conn as conn:
            return self._insert_run(
                conn, "triage", wall_seconds=wall_seconds,
                passed=record.get("mode") != "none",
                backend=record.get("backend_sub"), jobs=1,
                argv=argv, extra=record)

    @_retry_once
    def record_serve(self, stats: Mapping[str, Any],
                     rows: Sequence[Mapping[str, Any]], *,
                     argv: Optional[Sequence[str]] = None) -> int:
        """Record one ``repro serve`` session: a ``serve`` run row plus
        one case row per answered job.

        *stats* is the scheduler's final counters dict (rides whole in
        the run's ``extra`` column); *rows* are the scheduler's
        accumulated per-job ledger rows.  Jobs answered without
        execution (memo/artifact/coalesced) land with ``cached=1``, the
        dedup tallies land as a ``serve`` cache row, and the run kind
        keeps serve timings out of the regression sentinel's perf
        baselines (service rows mix batch-amortized and cache-served
        timings, which are not comparable to a suite run's).
        """
        rows = list(rows)
        with self._conn as conn:
            run_id = self._insert_run(
                conn, "serve",
                wall_seconds=stats.get("wall_seconds"),
                passed=all(row.get("passed", False) for row in rows),
                jobs=stats.get("workers"), argv=argv,
                extra=dict(stats))
            for row in rows:
                batch = row.get("batch_size") or 0
                self._insert_case(
                    conn, run_id, str(row.get("case", "?")),
                    row.get("backend") or "serve", "",
                    sim_seconds=row.get("simulation_seconds"),
                    compile_seconds=row.get("compile_seconds"),
                    cycles=row.get("cycles"),
                    evaluations=row.get("evaluations"),
                    passed=row.get("passed", False),
                    cached=row.get("cached", False),
                    batch_size=batch if batch > 1 else None,
                    lane_seconds=(row.get("simulation_seconds")
                                  if batch > 1 else None))
            served = (int(stats.get("memo_hits", 0))
                      + int(stats.get("artifact_hits", 0))
                      + int(stats.get("coalesced", 0)))
            self._insert_cache(conn, run_id, "serve", served,
                               int(stats.get("executed", 0)))
            return run_id

    @staticmethod
    def _insert_fault(conn: sqlite3.Connection, run_id: int,
                      result) -> None:
        """*result* quacks like :class:`repro.inject.InjectionResult`."""
        fault = result.fault
        conn.execute(
            "INSERT INTO fault_runs (run_id, fault_id, kind, target, "
            "verdict, mechanism, cycles, seconds, note, descriptor) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (run_id,
             fault.fault_id if fault is not None else "baseline",
             fault.kind if fault is not None else "none",
             fault.target if fault is not None else "",
             result.verdict, result.mechanism, result.cycles,
             result.seconds, result.note or None,
             json.dumps(fault.to_dict()) if fault is not None else None))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def runs(self, kind: Optional[str] = None,
             limit: Optional[int] = None) -> List[RunRow]:
        """Most recent first; *kind* filters, *limit* truncates."""
        sql = "SELECT * FROM runs"
        params: List[Any] = []
        if kind is not None:
            sql += " WHERE kind = ?"
            params.append(kind)
        sql += " ORDER BY run_id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        return [self._run_row(row)
                for row in self._conn.execute(sql, params)]

    def latest_run(self, kind: Optional[str] = None) -> Optional[RunRow]:
        rows = self.runs(kind=kind, limit=1)
        return rows[0] if rows else None

    def run(self, run_id: int) -> Optional[RunRow]:
        row = self._conn.execute("SELECT * FROM runs WHERE run_id = ?",
                                 (run_id,)).fetchone()
        return self._run_row(row) if row is not None else None

    @staticmethod
    def _run_row(row: sqlite3.Row) -> RunRow:
        extra = row["extra"]
        try:
            extra = json.loads(extra) if extra else {}
        except ValueError:
            extra = {}
        if not isinstance(extra, dict):
            # a hand-written or corrupted row can hold any JSON value;
            # every consumer expects a mapping (dashboard sections call
            # .get on it), so coerce rather than crash them
            extra = {"value": extra}
        return RunRow(run_id=row["run_id"], kind=row["kind"],
                      started_at=row["started_at"],
                      wall_seconds=row["wall_seconds"] or 0.0,
                      passed=bool(row["passed"]), backend=row["backend"],
                      jobs=row["jobs"], git_rev=row["git_rev"],
                      python=row["python"], hostname=row["hostname"],
                      argv=row["argv"], extra=extra)

    def case_rows(self, run_id: int) -> List[CaseRow]:
        return [self._case_row(row) for row in self._conn.execute(
            "SELECT * FROM case_runs WHERE run_id = ? ORDER BY id",
            (run_id,))]

    def case_history(self, app: str, backend: str, size: str = "", *,
                     exclude_run: Optional[int] = None,
                     exclude_kinds: Sequence[str] = (),
                     limit: Optional[int] = None) -> List[CaseRow]:
        """Rows for one (app, backend, size) key, oldest first.

        *exclude_kinds* drops rows belonging to runs of those kinds —
        the sentinel uses it to keep fault-campaign baselines out of
        its perf history.
        """
        sql = ("SELECT * FROM case_runs WHERE app = ? AND backend = ? "
               "AND size = ?")
        params: List[Any] = [app, backend, size]
        if exclude_run is not None:
            sql += " AND run_id != ?"
            params.append(exclude_run)
        if exclude_kinds:
            marks = ", ".join("?" for _ in exclude_kinds)
            sql += (f" AND run_id NOT IN (SELECT run_id FROM runs "
                    f"WHERE kind IN ({marks}))")
            params.extend(exclude_kinds)
        sql += " ORDER BY run_id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        rows = [self._case_row(row)
                for row in self._conn.execute(sql, params)]
        rows.reverse()
        return rows

    @staticmethod
    def _case_row(row: sqlite3.Row) -> CaseRow:
        return CaseRow(run_id=row["run_id"], app=row["app"],
                       backend=row["backend"], size=row["size"],
                       sim_seconds=row["sim_seconds"],
                       compile_seconds=row["compile_seconds"],
                       cycles=row["cycles"], evaluations=row["evaluations"],
                       passed=bool(row["passed"]),
                       cached=bool(row["cached"]),
                       batch_size=row["batch_size"],
                       lane_seconds=row["lane_seconds"])

    def coverage_rows(self, run_id: int) -> List[CoverageRow]:
        return [CoverageRow(run_id=row["run_id"], scope=row["scope"],
                            state_coverage=row["state_coverage"],
                            transition_coverage=row["transition_coverage"],
                            operator_coverage=row["operator_coverage"])
                for row in self._conn.execute(
                    "SELECT * FROM coverage_runs WHERE run_id = ? "
                    "ORDER BY id", (run_id,))]

    def coverage_history(self, scope: str, *,
                         exclude_run: Optional[int] = None,
                         limit: Optional[int] = None) -> List[CoverageRow]:
        sql = "SELECT * FROM coverage_runs WHERE scope = ?"
        params: List[Any] = [scope]
        if exclude_run is not None:
            sql += " AND run_id != ?"
            params.append(exclude_run)
        sql += " ORDER BY run_id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        rows = [CoverageRow(run_id=row["run_id"], scope=row["scope"],
                            state_coverage=row["state_coverage"],
                            transition_coverage=row["transition_coverage"],
                            operator_coverage=row["operator_coverage"])
                for row in self._conn.execute(sql, params)]
        rows.reverse()
        return rows

    def cache_rows(self, run_id: int) -> List[CacheRow]:
        return [CacheRow(run_id=row["run_id"], cache=row["cache"],
                         hits=row["hits"], misses=row["misses"])
                for row in self._conn.execute(
                    "SELECT * FROM cache_runs WHERE run_id = ? ORDER BY id",
                    (run_id,))]

    def cache_history(self, cache: str, *,
                      exclude_run: Optional[int] = None,
                      limit: Optional[int] = None) -> List[CacheRow]:
        sql = "SELECT * FROM cache_runs WHERE cache = ?"
        params: List[Any] = [cache]
        if exclude_run is not None:
            sql += " AND run_id != ?"
            params.append(exclude_run)
        sql += " ORDER BY run_id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        rows = [CacheRow(run_id=row["run_id"], cache=row["cache"],
                         hits=row["hits"], misses=row["misses"])
                for row in self._conn.execute(sql, params)]
        rows.reverse()
        return rows

    def fuzz_rows(self, run_id: int) -> List[FuzzRow]:
        return [FuzzRow(run_id=row["run_id"], kind=row["kind"],
                        count=row["count"])
                for row in self._conn.execute(
                    "SELECT * FROM fuzz_runs WHERE run_id = ? ORDER BY id",
                    (run_id,))]

    def fault_rows(self, run_id: int) -> List[FaultRow]:
        rows = []
        for row in self._conn.execute(
                "SELECT * FROM fault_runs WHERE run_id = ? ORDER BY id",
                (run_id,)):
            descriptor = row["descriptor"]
            try:
                descriptor = json.loads(descriptor) if descriptor else None
            except ValueError:
                descriptor = None
            rows.append(FaultRow(
                run_id=row["run_id"], fault_id=row["fault_id"],
                kind=row["kind"], target=row["target"],
                verdict=row["verdict"], mechanism=row["mechanism"],
                cycles=row["cycles"], seconds=row["seconds"],
                note=row["note"], descriptor=descriptor))
        return rows

    def apps(self) -> List[str]:
        return [row[0] for row in self._conn.execute(
            "SELECT DISTINCT app FROM case_runs ORDER BY app")]

    def latest_size(self, app: str, backend: str) -> Optional[str]:
        """The size key this (app, backend) pair was most recently run
        at — trend charts must not mix sizes on one axis."""
        row = self._conn.execute(
            "SELECT size FROM case_runs WHERE app = ? AND backend = ? "
            "ORDER BY run_id DESC LIMIT 1", (app, backend)).fetchone()
        return row[0] if row is not None else None

    def coverage_scopes(self) -> List[str]:
        return [row[0] for row in self._conn.execute(
            "SELECT DISTINCT scope FROM coverage_runs ORDER BY scope")]

    def backends(self) -> List[str]:
        return [row[0] for row in self._conn.execute(
            "SELECT DISTINCT backend FROM case_runs ORDER BY backend")]

    def counts(self) -> Dict[str, int]:
        """Run tallies per kind (for ``repro obs report``)."""
        return {row[0]: row[1] for row in self._conn.execute(
            "SELECT kind, COUNT(*) FROM runs GROUP BY kind ORDER BY kind")}

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def gc(self, keep: int = 100) -> int:
        """Drop all but the newest *keep* runs (children cascade by hand
        — the schema predates ``ON DELETE CASCADE`` and must keep
        working on v1 files).  Returns the number of runs removed."""
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        with self._conn as conn:
            stale = [row[0] for row in conn.execute(
                "SELECT run_id FROM runs ORDER BY run_id DESC "
                "LIMIT -1 OFFSET ?", (keep,))]
            for run_id in stale:
                for table in ("case_runs", "coverage_runs", "cache_runs",
                              "fuzz_runs", "fault_runs"):
                    conn.execute(
                        f"DELETE FROM {table} WHERE run_id = ?",  # noqa: S608
                        (run_id,))
                conn.execute("DELETE FROM runs WHERE run_id = ?", (run_id,))
        if stale:
            try:
                self._conn.execute("VACUUM")
            except sqlite3.DatabaseError:
                pass
        return len(stale)


def ledger_from_env(explicit: Optional[Union[str, Path]] = None,
                    env: Mapping[str, str] = os.environ
                    ) -> Optional[Ledger]:
    """Open the ledger named by *explicit* or ``$REPRO_LEDGER``, if any."""
    path = explicit or env.get(LEDGER_ENV)
    return Ledger(path) if path else None
