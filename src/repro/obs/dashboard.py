"""Render the run ledger: static HTML dashboard + Prometheus textfile.

``render_dashboard`` turns a :class:`repro.obs.ledger.Ledger` into **one
self-contained HTML file**: all CSS and JS inline, sparklines and the
coverage heatmap emitted as inline SVG/colored cells, zero external
fetches — the file renders from a CI artifact tab, an air-gapped
machine, or ``file://``.  Sections:

* stat tiles — run counts, latest verdicts;
* per-app simulation-time trend sparklines, one per backend, each
  pinned to that pair's most recent *size* (a trend that silently mixed
  a quick-smoke point into a full-size series would be a lie);
* a coverage heatmap (scopes × runs, single-hue sequential ramp);
* the backend speedup table of the latest bench run;
* fuzz campaign history;
* fault-injection campaigns: verdict tallies per campaign plus the
  fault-coverage table (fault kind × verdict) of the latest one;
* divergence triage: first divergent cycle/net and top suspect per
  triaged failure, plus a kind × top-suspect-net tally table;
* serve sessions: throughput, dedup rate and p99 job latency per
  ``repro serve`` session, with cross-session trend sparklines (rows
  recorded before the latency histograms existed degrade to ``—``).

``export_prometheus`` writes the same latest-run facts in the
Prometheus *textfile collector* format, so an external scraper can
alert on the numbers the dashboard draws.
"""

from __future__ import annotations

import html
import json
import time
from typing import (Any, Callable, Dict, List, Mapping, Optional,
                    Sequence, Tuple)

from .ledger import CaseRow, Ledger, RunRow

__all__ = ["render_dashboard", "export_prometheus", "export_json"]

#: sequential blue ramp (light→dark) for the coverage heatmap
_SEQ_RAMP = ("#cde2fb", "#9ec5f4", "#6da7ec", "#3987e5", "#256abf",
             "#184f95", "#0d366b")

#: fixed categorical hue per backend (identity follows the entity —
#: a backend keeps its color no matter which subset is on screen)
_BACKEND_HUES = {
    "event": "#2a78d6",      # blue
    "compiled": "#eb6834",   # orange
    "oblivious": "#eda100",  # yellow
    "traced": "#1baf7a",     # aqua
    "batched": "#c2418f",    # magenta
}
_FALLBACK_HUE = "#4a3aa7"

_CSS = """
:root {
  color-scheme: light;
  --surface: #fcfcfb; --panel: #f4f3f1; --line: #dddcd8;
  --ink: #0b0b0b; --ink-2: #52514e; --ink-3: #8a8984;
  --good: #008300; --bad: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --panel: #232322; --line: #3a3a38;
    --ink: #ffffff; --ink-2: #c3c2b7; --ink-3: #8a8984;
    --good: #35b635; --bad: #e66767;
  }
}
* { box-sizing: border-box; }
body { margin: 0; padding: 24px; background: var(--surface);
       color: var(--ink);
       font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.sub { color: var(--ink-2); font-size: 12.5px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-top: 16px; }
.tile { background: var(--panel); border: 1px solid var(--line);
        border-radius: 8px; padding: 10px 14px; min-width: 130px; }
.tile .v { font-size: 22px; font-weight: 600; font-variant-numeric:
           tabular-nums; }
.tile .k { color: var(--ink-2); font-size: 11.5px; text-transform:
           uppercase; letter-spacing: .04em; }
table { border-collapse: collapse; font-variant-numeric: tabular-nums; }
th, td { padding: 4px 10px; text-align: right; border-bottom:
         1px solid var(--line); font-size: 13px; }
th { color: var(--ink-2); font-weight: 500; }
th:first-child, td:first-child { text-align: left; }
.grid { display: grid; gap: 10px 18px;
        grid-template-columns: repeat(auto-fill, minmax(190px, 1fr)); }
.spark { background: var(--panel); border: 1px solid var(--line);
         border-radius: 8px; padding: 8px 10px 6px; }
.spark .name { font-size: 12px; color: var(--ink-2); display: flex;
               justify-content: space-between; gap: 8px; }
.spark .name b { color: var(--ink); font-weight: 600; }
.legend { display: flex; gap: 14px; margin: 6px 0 10px; font-size: 12px;
          color: var(--ink-2); flex-wrap: wrap; }
.legend .sw { display: inline-block; width: 10px; height: 10px;
              border-radius: 2px; margin-right: 5px;
              vertical-align: -1px; }
.hm td { padding: 0; border: 2px solid var(--surface); }
.hm .cell { width: 40px; height: 24px; display: flex; align-items:
            center; justify-content: center; font-size: 11px; }
.hm th { font-size: 11.5px; }
.pass { color: var(--good); font-weight: 600; }
.fail { color: var(--bad); font-weight: 600; }
.mut { color: var(--ink-3); }
button.toggle { background: var(--panel); color: var(--ink);
                border: 1px solid var(--line); border-radius: 6px;
                padding: 4px 12px; font: inherit; font-size: 12.5px;
                cursor: pointer; }
#raw-runs[hidden] { display: none; }
footer { margin-top: 32px; color: var(--ink-3); font-size: 11.5px; }
"""

_JS = """
document.addEventListener('click', function (event) {
  var button = event.target.closest('button[data-toggle]');
  if (!button) return;
  var target = document.getElementById(button.dataset.toggle);
  if (!target) return;
  target.hidden = !target.hidden;
  button.textContent = (target.hidden ? 'show ' : 'hide ') +
                       button.dataset.label;
});
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "—"
    if seconds < 0.0005:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _fmt_when(timestamp: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M", time.localtime(timestamp))


# ----------------------------------------------------------------------
# Sparklines (inline SVG, native <title> tooltips — no network, no JS)
# ----------------------------------------------------------------------
def _sparkline(points: Sequence[Tuple[int, float]], hue: str,
               width: int = 168, height: int = 34,
               fmt: Callable[[float], str] = _fmt_seconds) -> str:
    """Polyline over (run_id, value) points, newest rightmost.

    ``fmt`` renders tooltip values; the default reads them as seconds.
    """
    if not points:
        return '<span class="mut">no data</span>'
    values = [value for _, value in points]
    low, high = min(values), max(values)
    spread = (high - low) or (high or 1.0)
    pad = 4
    inner_w, inner_h = width - 2 * pad, height - 2 * pad
    coords = []
    for index, (_, value) in enumerate(points):
        x = pad + (inner_w * index / max(len(points) - 1, 1))
        y = pad + inner_h * (1.0 - (value - low) / spread)
        coords.append((x, y))
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    last_x, last_y = coords[-1]
    dots = []
    for (x, y), (run_id, value) in zip(coords, points):
        dots.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="5" fill="transparent">'
            f'<title>run #{run_id}: {fmt(value)}</title></circle>')
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="trend, latest {fmt(values[-1])}">'
        f'<polyline points="{path}" fill="none" stroke="{hue}" '
        f'stroke-width="2" stroke-linejoin="round" '
        f'stroke-linecap="round"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="3" '
        f'fill="{hue}"/>' + "".join(dots) + "</svg>")


def _heat_cell(ratio: Optional[float]) -> str:
    if ratio is None:
        return '<td><div class="cell mut">·</div></td>'
    step = min(int(ratio * len(_SEQ_RAMP)), len(_SEQ_RAMP) - 1)
    fill = _SEQ_RAMP[step]
    ink = "#0b0b0b" if step < 3 else "#ffffff"
    label = f"{100 * ratio:.0f}"
    return (f'<td><div class="cell" style="background:{fill};'
            f'color:{ink}" title="{100 * ratio:.1f}% state coverage">'
            f'{label}</div></td>')


# ----------------------------------------------------------------------
# Section builders
# ----------------------------------------------------------------------
def _tiles(ledger: Ledger) -> str:
    counts = ledger.counts()
    total = sum(counts.values())
    tiles = [f'<div class="tile"><div class="v">{total}</div>'
             f'<div class="k">runs recorded</div></div>']
    for kind in ("suite", "bench", "fuzz", "inject", "flow", "verify"):
        if counts.get(kind):
            tiles.append(
                f'<div class="tile"><div class="v">{counts[kind]}</div>'
                f'<div class="k">{_esc(kind)} runs</div></div>')
    latest = ledger.latest_run()
    if latest is not None:
        verdict = ('<span class="pass">PASS</span>' if latest.passed
                   else '<span class="fail">FAIL</span>')
        tiles.append(
            f'<div class="tile"><div class="v">{verdict}</div>'
            f'<div class="k">latest: {_esc(latest.kind)} '
            f'#{latest.run_id}</div></div>')
        coverage = ledger.coverage_rows(latest.run_id)
        aggregate = [row for row in coverage if row.scope == "aggregate"]
        if aggregate and aggregate[0].state_coverage is not None:
            tiles.append(
                f'<div class="tile"><div class="v">'
                f'{100 * aggregate[0].state_coverage:.1f}%</div>'
                f'<div class="k">fsm state coverage</div></div>')
    return f'<div class="tiles">{"".join(tiles)}</div>'


def _legend(backends: Sequence[str]) -> str:
    entries = []
    for backend in backends:
        hue = _BACKEND_HUES.get(backend, _FALLBACK_HUE)
        entries.append(f'<span><span class="sw" '
                       f'style="background:{hue}"></span>'
                       f'{_esc(backend)}</span>')
    return f'<div class="legend">{"".join(entries)}</div>'


def _trend_section(ledger: Ledger, history: int) -> str:
    apps = ledger.apps()
    backends = ledger.backends()
    if not apps:
        return '<p class="mut">no per-app timings recorded yet</p>'
    cards = []
    for app in apps:
        for backend in backends:
            size = ledger.latest_size(app, backend)
            if size is None:
                continue
            rows = [row for row in
                    ledger.case_history(app, backend, size, limit=history)
                    if row.sim_seconds is not None and not row.cached]
            if not rows:
                continue
            points = [(row.run_id, row.sim_seconds) for row in rows]
            hue = _BACKEND_HUES.get(backend, _FALLBACK_HUE)
            latest = points[-1][1]
            cards.append(
                f'<div class="spark"><div class="name">'
                f'<span><b>{_esc(app)}</b> · {_esc(backend)}</span>'
                f'<span>{_fmt_seconds(latest)}</span></div>'
                f'{_sparkline(points, hue)}</div>')
    return _legend(backends) + f'<div class="grid">{"".join(cards)}</div>'


def _amortized_section(ledger: Ledger, history: int) -> str:
    """Per-stimulus amortized cost of batched runs: sparklines over
    ``lane_seconds`` (one card per app × size with batch history)."""
    hue = _BACKEND_HUES["batched"]
    cards = []
    for app in ledger.apps():
        size = ledger.latest_size(app, "batched")
        if size is None:
            continue
        rows = [row for row in
                ledger.case_history(app, "batched", size, limit=history)
                if row.lane_seconds is not None and not row.cached]
        if not rows:
            continue
        points = [(row.run_id, row.lane_seconds) for row in rows]
        latest = rows[-1]
        batch = latest.batch_size or 1
        cards.append(
            f'<div class="spark"><div class="name">'
            f'<span><b>{_esc(app)}</b> · batch {batch}</span>'
            f'<span>{_fmt_seconds(latest.lane_seconds)}/stim</span></div>'
            f'{_sparkline(points, hue)}</div>')
    if not cards:
        return ('<p class="mut">no batched runs recorded yet '
                '(<code>repro suite --batch N</code>)</p>')
    return f'<div class="grid">{"".join(cards)}</div>'


def _heatmap_section(ledger: Ledger, history: int) -> str:
    scopes = [scope for scope in ledger.coverage_scopes()
              if scope != "aggregate"]
    if not scopes:
        return '<p class="mut">no coverage recorded yet</p>'
    run_ids: List[int] = []
    matrix: Dict[str, Dict[int, float]] = {scope: {} for scope in scopes}
    for scope in scopes:
        for row in ledger.coverage_history(scope, limit=history):
            if row.state_coverage is None:
                continue
            matrix[scope][row.run_id] = row.state_coverage
            if row.run_id not in run_ids:
                run_ids.append(row.run_id)
    run_ids.sort()
    run_ids = run_ids[-history:]
    header = "".join(f'<th title="run #{run_id}">#{run_id}</th>'
                     for run_id in run_ids)
    body = []
    for scope in scopes:
        cells = "".join(_heat_cell(matrix[scope].get(run_id))
                        for run_id in run_ids)
        body.append(f"<tr><td>{_esc(scope)}</td>{cells}</tr>")
    ramp = "".join(f'<span class="sw" style="background:{hex_}"></span>'
                   for hex_ in _SEQ_RAMP)
    return (f'<table class="hm"><thead><tr><th>scope</th>{header}'
            f'</tr></thead><tbody>{"".join(body)}</tbody></table>'
            f'<div class="legend"><span>FSM state coverage: '
            f'0% {ramp} 100%</span></div>')


def _speedup_section(ledger: Ledger) -> str:
    run = ledger.latest_run("bench") or ledger.latest_run("suite")
    if run is None:
        return '<p class="mut">no bench or suite runs recorded yet</p>'
    per_app: Dict[str, Dict[str, CaseRow]] = {}
    for row in ledger.case_rows(run.run_id):
        if row.sim_seconds is not None:
            per_app.setdefault(row.app, {})[row.backend] = row
    backends = sorted({backend for rows in per_app.values()
                       for backend in rows})
    if not per_app:
        return '<p class="mut">the latest run recorded no timings</p>'
    reference = "event" if "event" in backends else backends[0]
    header = "".join(f"<th>{_esc(name)}</th>" for name in backends)
    speed_cols = [name for name in backends if name != reference]
    header += "".join(f"<th>{_esc(name)} ×</th>" for name in speed_cols)
    rows_html = []
    for app in sorted(per_app):
        rows = per_app[app]
        cells = "".join(
            f"<td>{_fmt_seconds(rows[name].sim_seconds)}</td>"
            if name in rows else '<td class="mut">—</td>'
            for name in backends)
        for name in speed_cols:
            if name in rows and reference in rows \
                    and rows[name].sim_seconds:
                ratio = (rows[reference].sim_seconds
                         / rows[name].sim_seconds)
                cells += f"<td>{ratio:.1f}×</td>"
            else:
                cells += '<td class="mut">—</td>'
        rows_html.append(f"<tr><td>{_esc(app)}</td>{cells}</tr>")
    caption = (f'run #{run.run_id} ({_esc(run.kind)}, '
               f'{_fmt_when(run.started_at)}); × is speedup vs '
               f'{_esc(reference)}')
    return (f'<p class="sub">{caption}</p>'
            f'<table><thead><tr><th>app</th>{header}</tr></thead>'
            f'<tbody>{"".join(rows_html)}</tbody></table>')


def _fuzz_section(ledger: Ledger, history: int) -> str:
    runs = ledger.runs(kind="fuzz", limit=history)
    if not runs:
        return '<p class="mut">no fuzz campaigns recorded yet</p>'
    kinds: List[str] = []
    tallies: Dict[int, Dict[str, int]] = {}
    for run in runs:
        tallies[run.run_id] = {row.kind: row.count
                               for row in ledger.fuzz_rows(run.run_id)}
        for kind in tallies[run.run_id]:
            if kind not in kinds:
                kinds.append(kind)
    kinds.sort(key=lambda kind: (kind != "iterations", kind != "pass",
                                 kind))
    header = "".join(f"<th>{_esc(kind)}</th>" for kind in kinds)
    body = []
    for run in runs:
        verdict = ('<span class="pass">PASS</span>' if run.passed
                   else '<span class="fail">FAIL</span>')
        cells = "".join(
            f"<td>{tallies[run.run_id].get(kind, 0)}</td>"
            for kind in kinds)
        body.append(
            f"<tr><td>#{run.run_id} "
            f'<span class="mut">{_fmt_when(run.started_at)}</span></td>'
            f"<td>{verdict}</td><td>{_fmt_seconds(run.wall_seconds)}</td>"
            f"{cells}</tr>")
    return (f'<table><thead><tr><th>campaign</th><th>verdict</th>'
            f'<th>wall</th>{header}</tr></thead>'
            f'<tbody>{"".join(body)}</tbody></table>')


#: verdict display order and hues for fault-injection campaigns
_VERDICTS = ("masked", "sdc", "hang", "crash")


def _inject_section(ledger: Ledger, history: int) -> str:
    runs = ledger.runs(kind="inject", limit=history)
    if not runs:
        return ('<p class="mut">no fault-injection campaigns recorded '
                'yet (<code>repro campaign</code>)</p>')
    body = []
    for run in runs:
        verdicts = run.extra.get("verdicts", {})
        if not verdicts:  # recorded by an older CLI: tally the rows
            verdicts = {}
            for row in ledger.fault_rows(run.run_id):
                if row.kind != "none":
                    verdicts[row.verdict] = \
                        verdicts.get(row.verdict, 0) + 1
        cells = "".join(f"<td>{verdicts.get(verdict, 0)}</td>"
                        for verdict in _VERDICTS)
        body.append(
            f"<tr><td>#{run.run_id} "
            f'<span class="mut">{_fmt_when(run.started_at)}</span></td>'
            f"<td>{_esc(run.extra.get('app', '—'))}</td>"
            f"<td>{_esc(run.backend or '—')}</td>"
            f"<td>{run.extra.get('faults', 0)}</td>{cells}"
            f"<td>{_fmt_seconds(run.wall_seconds)}</td></tr>")
    header = "".join(f"<th>{_esc(verdict)}</th>" for verdict in _VERDICTS)
    table = (f'<table><thead><tr><th>campaign</th><th>app</th>'
             f'<th>backend</th><th>faults</th>{header}<th>wall</th>'
             f'</tr></thead><tbody>{"".join(body)}</tbody></table>')

    # fault-coverage table (kind × verdict) of the latest campaign
    latest = runs[0]
    coverage: Dict[str, Dict[str, int]] = {}
    for row in ledger.fault_rows(latest.run_id):
        if row.kind == "none":
            continue
        cell = coverage.setdefault(row.kind, {})
        cell[row.verdict] = cell.get(row.verdict, 0) + 1
    if coverage:
        body = []
        for kind in sorted(coverage):
            cells = "".join(f"<td>{coverage[kind].get(verdict, 0)}</td>"
                            for verdict in _VERDICTS)
            total = sum(coverage[kind].values())
            body.append(f"<tr><td>{_esc(kind)}</td>{cells}"
                        f"<td>{total}</td></tr>")
        table += (
            f'<p class="sub">fault coverage of campaign '
            f'#{latest.run_id} '
            f'({_esc(latest.extra.get("app", "?"))}, budget '
            f'{latest.extra.get("cycle_budget", "?")} cycles)</p>'
            f'<table><thead><tr><th>fault kind</th>{header}'
            f'<th>total</th></tr></thead>'
            f'<tbody>{"".join(body)}</tbody></table>')
    else:
        table += ('<p class="mut">latest campaign recorded no '
                  'classified faults — no fault-coverage table</p>')
    return table


def _triage_section(ledger: Ledger, history: int) -> str:
    runs = ledger.runs(kind="triage", limit=history)
    if not runs:
        return ('<p class="mut">no triage records yet '
                '(<code>repro triage</code>, or automatic on fuzz '
                'mismatches and sampled campaign sdc verdicts)</p>')
    body = []
    # kind × suspect-net tally over the recent triage records
    by_kind_net: Dict[str, Dict[str, int]] = {}
    for run in runs:
        extra = run.extra
        kind = str(extra.get("kind", "?"))
        suspect = extra.get("top_suspect") or "—"
        cell = by_kind_net.setdefault(kind, {})
        cell[str(suspect)] = cell.get(str(suspect), 0) + 1
        cycle = extra.get("cycle")
        body.append(
            f"<tr><td>#{run.run_id} "
            f'<span class="mut">{_fmt_when(run.started_at)}</span></td>'
            f"<td>{_esc(kind)}</td>"
            f"<td>{_esc(extra.get('app', '—'))}</td>"
            f"<td>{_esc(extra.get('backend_ref', '—'))} vs "
            f"{_esc(extra.get('backend_sub', '—'))}</td>"
            f"<td>{_esc(extra.get('mode', '—'))}</td>"
            f"<td>{cycle if cycle is not None else '—'}</td>"
            f"<td>{_esc(extra.get('net') or '—')}</td>"
            f"<td>{_esc(suspect)}</td></tr>")
    table = ('<table><thead><tr><th>triage</th><th>kind</th><th>app</th>'
             '<th>pair</th><th>mode</th><th>first cycle</th>'
             '<th>divergent net</th><th>top suspect</th></tr></thead>'
             f'<tbody>{"".join(body)}</tbody></table>')
    nets: List[str] = []
    for cell in by_kind_net.values():
        for net in cell:
            if net not in nets:
                nets.append(net)
    nets.sort()
    if nets:
        header = "".join(f"<th>{_esc(net)}</th>" for net in nets)
        rows = []
        for kind in sorted(by_kind_net):
            cells = "".join(
                f"<td>{by_kind_net[kind].get(net, 0) or ''}</td>"
                for net in nets)
            rows.append(f"<tr><td>{_esc(kind)}</td>{cells}</tr>")
        table += (
            '<p class="sub">triage kind × top-suspect net (recent '
            'records) — recurring suspects point at systematic '
            'weak spots</p>'
            f'<table><thead><tr><th>kind</th>{header}</tr></thead>'
            f'<tbody>{"".join(rows)}</tbody></table>')
    return table


def _serve_section(ledger: Ledger, history: int) -> str:
    runs = ledger.runs(kind="serve", limit=history)
    if not runs:
        return ('<p class="mut">no serve sessions recorded yet '
                '(<code>repro serve --ledger</code>)</p>')
    from .metrics import Histogram

    def quantile(run: RunRow, q: float) -> Optional[float]:
        payload = run.extra.get("histograms")
        if not isinstance(payload, Mapping) \
                or "job_latency_seconds" not in payload:
            return None  # recorded before the latency histograms existed
        try:
            return Histogram.from_dict(
                payload["job_latency_seconds"]).quantile(q)
        except (TypeError, ValueError, KeyError):
            return None

    body = []
    series: Dict[str, List[Tuple[int, float]]] = {
        "throughput": [], "dedup": [], "p99": []}
    for run in runs:
        extra = run.extra
        submitted = int(extra.get("submitted", 0) or 0)
        wall = run.wall_seconds or extra.get("wall_seconds") or 0.0
        deduped = (int(extra.get("memo_hits", 0) or 0)
                   + int(extra.get("artifact_hits", 0) or 0)
                   + int(extra.get("coalesced", 0) or 0))
        throughput = submitted / wall if wall else None
        dedup = deduped / submitted if submitted else None
        p50 = quantile(run, 0.50)
        p99 = quantile(run, 0.99)
        if throughput is not None:
            series["throughput"].append((run.run_id, throughput))
        if dedup is not None:
            series["dedup"].append((run.run_id, dedup))
        if p99 is not None:
            series["p99"].append((run.run_id, p99))
        throughput_cell = (f"{throughput:.1f}/s"
                           if throughput is not None else "—")
        dedup_cell = f"{100 * dedup:.0f}%" if dedup is not None else "—"
        body.append(
            f"<tr><td>#{run.run_id} "
            f'<span class="mut">{_fmt_when(run.started_at)}</span></td>'
            f"<td>{submitted}</td>"
            f"<td>{int(extra.get('executed', 0) or 0)}</td>"
            f"<td>{deduped}</td>"
            f"<td>{int(extra.get('failed', 0) or 0)}</td>"
            f"<td>{throughput_cell}</td><td>{dedup_cell}</td>"
            f"<td>{_fmt_seconds(p50) if p50 is not None else '—'}</td>"
            f"<td>{_fmt_seconds(p99) if p99 is not None else '—'}</td>"
            f"<td>{_fmt_seconds(run.wall_seconds)}</td></tr>")
    table = ('<table><thead><tr><th>session</th><th>jobs</th>'
             '<th>executed</th><th>dedup-served</th><th>failed</th>'
             '<th>throughput</th><th>dedup rate</th><th>p50</th>'
             '<th>p99</th><th>wall</th></tr></thead>'
             f'<tbody>{"".join(body)}</tbody></table>')
    sparks = []
    for key, label, hue, fmt in (
            ("throughput", "throughput", "#3987e5",
             lambda value: f"{value:.1f} jobs/s"),
            ("dedup", "dedup rate", "#256abf",
             lambda value: f"{100 * value:.0f}%"),
            ("p99", "p99 job latency", "#184f95", _fmt_seconds)):
        points = list(reversed(series[key]))  # oldest leftmost
        sparks.append(
            f'<div class="tile"><div class="v">'
            f'{_sparkline(points, hue, fmt=fmt)}</div>'
            f'<div class="k">{_esc(label)}</div></div>')
    return f'<div class="tiles">{"".join(sparks)}</div>{table}'


def _runs_table(ledger: Ledger, history: int) -> str:
    rows = []
    for run in ledger.runs(limit=history):
        verdict = ('<span class="pass">PASS</span>' if run.passed
                   else '<span class="fail">FAIL</span>')
        rows.append(
            f"<tr><td>#{run.run_id}</td><td>{_esc(run.kind)}</td>"
            f"<td>{verdict}</td><td>{_fmt_when(run.started_at)}</td>"
            f"<td>{_fmt_seconds(run.wall_seconds)}</td>"
            f"<td>{_esc(run.backend or '—')}</td>"
            f"<td>{_esc(run.jobs or '—')}</td>"
            f"<td>{_esc(run.git_rev or '—')}</td>"
            f"<td>{_esc(run.hostname or '—')}</td></tr>")
    return (
        f'<button class="toggle" data-toggle="raw-runs" '
        f'data-label="run table">show run table</button>'
        f'<div id="raw-runs" hidden><table><thead><tr><th>run</th>'
        f'<th>kind</th><th>verdict</th><th>when</th><th>wall</th>'
        f'<th>backend</th><th>jobs</th><th>git</th><th>host</th>'
        f'</tr></thead><tbody>{"".join(rows)}</tbody></table></div>')


def render_dashboard(ledger: Ledger, *, history: int = 30,
                     title: str = "repro run ledger") -> str:
    """One self-contained HTML document over the whole ledger."""
    generated = _fmt_when(time.time())
    latest = ledger.latest_run()
    provenance = ""
    if latest is not None and latest.git_rev:
        provenance = f" · latest git {_esc(latest.git_rev)}"
    return f"""<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_CSS}</style>
</head>
<body>
<h1>{_esc(title)}</h1>
<div class="sub">{_esc(ledger.path)} · generated {generated}{provenance}
 · self-contained, no external resources</div>
{_tiles(ledger)}
<h2>Simulation-time trends <span class="sub">(per app × backend, at its
latest size; hover points for values)</span></h2>
{_trend_section(ledger, history)}
<h2>Amortized per-stimulus cost <span class="sub">(batched runs:
simulation seconds ÷ batch size)</span></h2>
{_amortized_section(ledger, history)}
<h2>Coverage heatmap <span class="sub">(FSM state coverage per scope,
per run)</span></h2>
{_heatmap_section(ledger, history)}
<h2>Backend speedups</h2>
{_speedup_section(ledger)}
<h2>Fuzz campaigns</h2>
{_fuzz_section(ledger, history)}
<h2>Fault-injection campaigns <span class="sub">(verdicts per campaign;
fault coverage of the latest)</span></h2>
{_inject_section(ledger, history)}
<h2>Divergence triage <span class="sub">(first divergent cycle/net and
top suspect per triaged failure)</span></h2>
{_triage_section(ledger, history)}
<h2>Serve sessions <span class="sub">(throughput, dedup rate and job
latency per <code>repro serve</code> session)</span></h2>
{_serve_section(ledger, history)}
<h2>All runs</h2>
{_runs_table(ledger, history)}
<footer>generated by <code>python -m repro obs dashboard</code> —
the regression sentinel over the same ledger is
<code>python -m repro obs compare</code></footer>
<script>{_JS}</script>
</body>
</html>
"""


# ----------------------------------------------------------------------
# Prometheus textfile exporter
# ----------------------------------------------------------------------
def _prom_escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"') \
                .replace("\n", r"\n")


def _prom_line(name: str, labels: Mapping[str, Any],
               value: float) -> str:
    rendered = ",".join(f'{key}="{_prom_escape(str(label))}"'
                        for key, label in labels.items())
    body = f"{{{rendered}}}" if rendered else ""
    return f"{name}{body} {value:g}"


def export_prometheus(ledger: Ledger) -> str:
    """The latest-run facts in Prometheus textfile-collector format."""
    lines: List[str] = []

    def metric(name: str, kind: str, help_text: str,
               samples: List[str]) -> None:
        if samples:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.extend(samples)

    counts = ledger.counts()
    metric("repro_ledger_runs_total", "gauge",
           "Runs recorded in the ledger, by kind.",
           [_prom_line("repro_ledger_runs_total", {"kind": kind}, count)
            for kind, count in counts.items()])

    per_kind = [ledger.latest_run(kind) for kind in counts]
    metric("repro_run_passed", "gauge",
           "1 if the latest run of this kind passed.",
           [_prom_line("repro_run_passed", {"kind": run.kind},
                       1 if run.passed else 0)
            for run in per_kind if run is not None])
    metric("repro_run_wall_seconds", "gauge",
           "Wall-clock seconds of the latest run of this kind.",
           [_prom_line("repro_run_wall_seconds", {"kind": run.kind},
                       run.wall_seconds)
            for run in per_kind if run is not None])

    case_samples: List[str] = []
    cycle_samples: List[str] = []
    lane_samples: List[str] = []
    seen: set = set()
    for run in ledger.runs():
        for row in ledger.case_rows(run.run_id):
            key = (row.app, row.backend)
            if key in seen or row.sim_seconds is None or row.cached:
                continue
            seen.add(key)
            labels = {"app": row.app, "backend": row.backend}
            case_samples.append(_prom_line(
                "repro_case_sim_seconds", labels, row.sim_seconds))
            if row.cycles is not None:
                cycle_samples.append(_prom_line(
                    "repro_case_cycles", labels, row.cycles))
            if row.lane_seconds is not None:
                lane_samples.append(_prom_line(
                    "repro_case_lane_seconds", labels, row.lane_seconds))
    metric("repro_case_sim_seconds", "gauge",
           "Latest simulation seconds per app and backend.", case_samples)
    metric("repro_case_cycles", "gauge",
           "Latest simulated cycles per app and backend.", cycle_samples)
    metric("repro_case_lane_seconds", "gauge",
           "Latest amortized per-stimulus seconds of batched runs.",
           lane_samples)

    coverage_samples: List[str] = []
    for scope in ledger.coverage_scopes():
        rows = ledger.coverage_history(scope, limit=1)
        if not rows:
            continue
        row = rows[-1]
        for metric_name in ("state_coverage", "transition_coverage",
                            "operator_coverage"):
            value = getattr(row, metric_name)
            if value is not None:
                coverage_samples.append(_prom_line(
                    "repro_coverage_ratio",
                    {"scope": scope, "metric": metric_name}, value))
    metric("repro_coverage_ratio", "gauge",
           "Latest functional-coverage ratios per scope.",
           coverage_samples)

    cache_samples: List[str] = []
    for run in ledger.runs():
        for row in ledger.cache_rows(run.run_id):
            label = {"cache": row.cache}
            if row.cache not in {sample.split('"')[1]
                                 for sample in cache_samples}:
                cache_samples.append(_prom_line(
                    "repro_cache_hit_rate", label, row.hit_rate))
    metric("repro_cache_hit_rate", "gauge",
           "Latest hit rate per cache (artifact, kernel).", cache_samples)

    fuzz = ledger.latest_run("fuzz")
    if fuzz is not None:
        metric("repro_fuzz_outcomes_total", "gauge",
               "Outcome tallies of the latest fuzz campaign.",
               [_prom_line("repro_fuzz_outcomes_total",
                           {"kind": row.kind}, row.count)
                for row in ledger.fuzz_rows(fuzz.run_id)])

    inject = ledger.latest_run("inject")
    if inject is not None:
        tallies: Dict[str, int] = {verdict: 0 for verdict in _VERDICTS}
        for row in ledger.fault_rows(inject.run_id):
            if row.kind != "none":
                tallies[row.verdict] = tallies.get(row.verdict, 0) + 1
        metric("repro_inject_verdicts_total", "gauge",
               "Verdict tallies of the latest fault-injection campaign.",
               [_prom_line("repro_inject_verdicts_total",
                           {"verdict": verdict}, count)
                for verdict, count in tallies.items()])

    triage_runs = ledger.runs(kind="triage")
    if triage_runs:
        tallies: Dict[Tuple[str, str], int] = {}
        for run in triage_runs:
            key = (str(run.extra.get("kind", "?")),
                   str(run.extra.get("mode", "?")))
            tallies[key] = tallies.get(key, 0) + 1
        metric("repro_triage_total", "gauge",
               "Divergence-triage records in the ledger, by producer "
               "kind and divergence mode.",
               [_prom_line("repro_triage_total",
                           {"kind": kind, "mode": mode}, count)
                for (kind, mode), count in sorted(tallies.items())])

    # serve latency histograms of the latest session, under the same
    # family names the live daemon serves on GET /metrics
    serve = ledger.latest_run("serve")
    if serve is not None:
        payload = serve.extra.get("histograms")
        if isinstance(payload, Mapping) and payload:
            from .metrics import Histogram, render_prometheus_histogram

            gate_series: List[Tuple[Dict[str, str], Any]] = []
            plain: List[Tuple[str, Any]] = []
            for name in sorted(payload):
                try:
                    hist = Histogram.from_dict(payload[name])
                except (TypeError, ValueError, KeyError):
                    continue
                if name.startswith("gate_") and name.endswith("_seconds"):
                    gate = name[len("gate_"):-len("_seconds")]
                    gate_series.append(({"gate": gate}, hist))
                else:
                    plain.append((name, hist))
            if gate_series:
                lines.extend(render_prometheus_histogram(
                    "repro_serve_gate_seconds", gate_series,
                    "Admission-gate latency of the latest serve "
                    "session, by gate."))
            for name, hist in plain:
                lines.extend(render_prometheus_histogram(
                    f"repro_serve_{name}", [({}, hist)],
                    f"Latest serve-session {name} distribution."))

    return "\n".join(lines) + "\n" if lines else ""


def export_json(ledger: Ledger, *, history: int = 30) -> str:
    """Machine-readable dump of recent runs (for ad-hoc tooling)."""
    payload: List[Dict[str, Any]] = []
    for run in ledger.runs(limit=history):
        payload.append({
            "run_id": run.run_id,
            "kind": run.kind,
            "started_at": run.started_at,
            "wall_seconds": run.wall_seconds,
            "passed": run.passed,
            "backend": run.backend,
            "jobs": run.jobs,
            "git_rev": run.git_rev,
            "cases": [vars(row) for row in ledger.case_rows(run.run_id)],
            "coverage": [vars(row)
                         for row in ledger.coverage_rows(run.run_id)],
            "caches": [{**vars(row), "hit_rate": row.hit_rate}
                       for row in ledger.cache_rows(run.run_id)],
            "fuzz": [vars(row) for row in ledger.fuzz_rows(run.run_id)],
            "faults": [vars(row)
                       for row in ledger.fault_rows(run.run_id)],
        })
        if run.kind == "triage":
            # the full machine-readable triage record rides in extra
            payload[-1]["triage"] = run.extra
    return json.dumps({"schema": 1, "runs": payload}, indent=2,
                      default=str) + "\n"


def _fmt_runrow(run: RunRow) -> str:  # pragma: no cover - debug helper
    return (f"#{run.run_id} {run.kind} "
            f"{'PASS' if run.passed else 'FAIL'} "
            f"wall={run.wall_seconds:.2f}s")
