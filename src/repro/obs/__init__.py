"""Observability: tracing, metrics and functional coverage.

The paper's premise is that language-level simulation gives visibility a
raw FPGA cannot — probes, assertions, stop mechanisms.  This package
applies the same idea to the test infrastructure *itself*:

* :mod:`repro.obs.trace` — hierarchical timing spans recorded to an
  append-only JSONL file (safe across the fork-based worker pools) and
  exported as Chrome/Perfetto ``trace_event`` JSON, so one
  ``TestSuite.run(jobs=N)`` or fuzz campaign renders as a single
  timeline including every worker process;
* :mod:`repro.obs.metrics` — counters (events processed, cycles, FSM
  transitions, cache hits/misses, fuzz outcome tallies) aggregated into
  a machine-readable ``metrics.json``;
* :mod:`repro.obs.coverage` — functional coverage: FSM state and
  transition coverage plus datapath operator-activation coverage,
  collected from all four simulation backends;
* :mod:`repro.obs.ledger` — the cross-run half: an SQLite run ledger
  persisting timings, coverage, cache rates and fuzz tallies per run
  (``--ledger`` / ``$REPRO_LEDGER``), read back by
  :mod:`repro.obs.regress` (the median+MAD regression sentinel,
  ``repro obs compare``) and :mod:`repro.obs.dashboard` (the
  self-contained HTML dashboard and Prometheus textfile exporter).

Everything is pay-for-what-you-use: with no recorder installed,
:func:`repro.obs.trace.span` returns a shared no-op object, and no
coverage hooks or watchers exist unless a collector is attached.
"""

from .coverage import (ConfigurationCoverage, CoverageCollector,
                       CoverageReport, FsmCoverage, OperatorCoverage,
                       format_coverage)
from .dashboard import export_json, export_prometheus, render_dashboard
from .ledger import (LEDGER_ENV, Ledger, LedgerError, SCHEMA_VERSION,
                     ledger_from_env)
from .metrics import (Histogram, Metrics, campaign_metrics, flow_metrics,
                      render_prometheus_histogram, serve_metrics,
                      suite_metrics, verification_metrics)
from .profile import (KernelProfiler, ProfileError, ProfileReport,
                      profile_case)
from .regress import (Finding, RegressionReport, Thresholds, compare_run)
from .trace import (Span, TraceRecorder, active_recorder, current_context,
                    event, export_chrome_trace, install, new_trace_id,
                    recording, span, start_span, trace_context, uninstall)
# triage pulls in sim/inject layers lazily; keep this import last
from .triage import (Suspect, TriageError, TriageRecord, TriageResult,
                     attach_to_ledger, locate_divergence,
                     render_triage_html, triage_backends, triage_fault,
                     triage_fuzz_entry)

__all__ = [
    "Span", "TraceRecorder", "recording", "span", "event", "start_span",
    "active_recorder", "install", "uninstall", "export_chrome_trace",
    "new_trace_id", "current_context", "trace_context",
    "Metrics", "Histogram", "render_prometheus_histogram",
    "verification_metrics", "suite_metrics", "flow_metrics",
    "campaign_metrics", "serve_metrics",
    "KernelProfiler", "ProfileError", "ProfileReport", "profile_case",
    "CoverageCollector", "CoverageReport", "ConfigurationCoverage",
    "FsmCoverage", "OperatorCoverage", "format_coverage",
    "Ledger", "LedgerError", "SCHEMA_VERSION", "LEDGER_ENV",
    "ledger_from_env",
    "Thresholds", "Finding", "RegressionReport", "compare_run",
    "render_dashboard", "export_prometheus", "export_json",
    "TriageError", "TriageRecord", "TriageResult", "Suspect",
    "locate_divergence", "triage_fault", "triage_backends",
    "triage_fuzz_entry", "render_triage_html", "attach_to_ledger",
]
