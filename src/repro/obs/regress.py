"""The regression sentinel: current run vs. a rolling baseline.

Given a ledger (:mod:`repro.obs.ledger`), the sentinel compares the
most recent run against the history of every (app, backend, size) key
it touched and flags three regression classes:

* **perf** — per-app simulation time above the robust noise band of
  its baseline (median + ``sigma`` scaled MADs) *and* above a relative
  floor (``min_rel`` × median), so microsecond jitter on a fast case
  never pages anyone but a genuine kernel slowdown always does;
* **coverage** — FSM state or transition coverage of a scope more than
  ``coverage_drop`` percentage points below the baseline median;
* **cache** — a cache hit rate (artifact or kernel) collapsing more
  than ``cache_drop`` below its baseline median.

Robust statistics because run history is dirty: one cold-cache outlier
or one loaded CI host must not poison the baseline the way it would a
mean/stddev band.  The scaled MAD (× 1.4826) estimates the standard
deviation under normality, so ``sigma`` reads like a z-score.

Keys with fewer than ``min_samples`` baseline points are *skipped*,
never guessed at — a brand-new app or backend produces no findings
until its history exists.

Fault-injection campaigns (``inject``-kind runs, see
:mod:`repro.inject`) are invisible to the perf gate in both directions:
their case rows never enter a baseline history (a campaign's fault-free
baseline timing is measured under campaign load, not bench conditions)
and an inject run under comparison is never itself perf-gated.

Exposed as ``python -m repro obs compare [--fail-on-regression]``; the
CI workflow diffs each PR's quick-bench run against the committed
``benchmarks/baseline_ledger.sqlite``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .ledger import Ledger, RunRow

__all__ = ["Thresholds", "Finding", "RegressionReport", "compare_run",
           "median", "mad"]

#: MAD → standard-deviation consistency constant (normal distribution)
MAD_SCALE = 1.4826


def median(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float],
        center: Optional[float] = None) -> float:
    """Median absolute deviation (unscaled)."""
    if not values:
        raise ValueError("mad of empty sequence")
    center = median(values) if center is None else center
    return median([abs(value - center) for value in values])


@dataclass
class Thresholds:
    """Sentinel knobs, all overridable from the CLI."""

    #: z-score-like width of the perf noise band (scaled MADs)
    sigma: float = 3.0
    #: minimum baseline points before a key is judged at all
    min_samples: int = 3
    #: perf findings additionally require current > min_rel * median
    min_rel: float = 1.25
    #: coverage drop threshold, in percentage points
    coverage_drop: float = 5.0
    #: cache hit-rate drop threshold, as an absolute rate (0..1)
    cache_drop: float = 0.25
    #: how many baseline runs back the rolling window reaches
    history: int = 20


@dataclass
class Finding:
    """One flagged regression."""

    kind: str              # "perf" | "coverage" | "cache"
    subject: str           # e.g. "fdct1/compiled" or "aggregate"
    metric: str            # e.g. "sim_seconds", "state_coverage"
    baseline: float
    current: float
    samples: int
    detail: str = ""

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def describe(self) -> str:
        if self.kind == "perf":
            change = f"{self.ratio:.2f}x baseline median"
        else:
            change = f"{self.baseline:.4g} -> {self.current:.4g}"
        text = (f"[{self.kind}] {self.subject} {self.metric}: {change} "
                f"(baseline median {self.baseline:.4g} over "
                f"{self.samples} run(s), current {self.current:.4g})")
        if self.detail:
            text += f" — {self.detail}"
        return text


@dataclass
class RegressionReport:
    """Everything one sentinel pass concluded."""

    run: Optional[RunRow]
    findings: List[Finding] = field(default_factory=list)
    checked: int = 0
    skipped: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        if self.run is None:
            return "sentinel: ledger holds no runs to compare"
        head = (f"sentinel: run #{self.run.run_id} ({self.run.kind}) vs "
                f"rolling baseline — {self.checked} metric(s) checked, "
                f"{len(self.findings)} regression(s), "
                f"{len(self.skipped)} skipped (insufficient history)")
        lines = [head]
        for finding in self.findings:
            lines.append("  " + finding.describe())
        if self.skipped:
            shown = ", ".join(self.skipped[:8])
            if len(self.skipped) > 8:
                shown += f", … ({len(self.skipped) - 8} more)"
            lines.append(f"  skipped: {shown}")
        if self.passed:
            lines.append("  no regressions against the baseline")
        return "\n".join(lines)


def _perf_gate(history: List[float], current: float,
               thresholds: Thresholds) -> Optional[tuple]:
    """(baseline_median, band) if *current* breaks the noise band."""
    center = median(history)
    spread = mad(history, center) * MAD_SCALE
    band = center + thresholds.sigma * spread
    if current > band and current > center * thresholds.min_rel:
        return center, band
    return None


def compare_run(ledger: Ledger, *, run_id: Optional[int] = None,
                baseline: Optional[Ledger] = None,
                thresholds: Optional[Thresholds] = None
                ) -> RegressionReport:
    """Compare one run (default: the latest) against its baseline.

    The baseline history comes from *baseline* when given (e.g. the
    committed CI ledger), otherwise from *ledger* itself with the
    compared run excluded — the rolling self-baseline.
    """
    thresholds = thresholds or Thresholds()
    run = ledger.run(run_id) if run_id is not None else ledger.latest_run()
    report = RegressionReport(run=run)
    if run is None:
        return report
    source = baseline if baseline is not None else ledger
    exclude = None if baseline is not None else run.run_id

    # -- perf: per-(app, backend, size) simulation seconds -------------
    # fault campaigns are not perf runs: never gate them, never let
    # their rows into a baseline; serve sessions mix batch-amortized
    # and cache-served timings, equally incomparable
    cases = [] if run.kind in ("inject", "serve") \
        else ledger.case_rows(run.run_id)
    for case in cases:
        if case.sim_seconds is None or case.cached:
            continue
        subject = f"{case.app}/{case.backend}"
        history = [row.sim_seconds for row in source.case_history(
                       case.app, case.backend, case.size,
                       exclude_run=exclude,
                       exclude_kinds=("inject", "serve"),
                       limit=thresholds.history)
                   if row.sim_seconds is not None and not row.cached]
        if len(history) < thresholds.min_samples:
            report.skipped.append(subject)
            continue
        report.checked += 1
        broke = _perf_gate(history, case.sim_seconds, thresholds)
        if broke is not None:
            center, band = broke
            report.findings.append(Finding(
                kind="perf", subject=subject, metric="sim_seconds",
                baseline=center, current=case.sim_seconds,
                samples=len(history),
                detail=f"noise band ends at {band:.4g}s "
                       f"(sigma={thresholds.sigma:g}, "
                       f"min_rel={thresholds.min_rel:g})"))

    # -- coverage: per-scope state/transition percentages --------------
    for row in ledger.coverage_rows(run.run_id):
        history_rows = source.coverage_history(
            row.scope, exclude_run=exclude, limit=thresholds.history)
        if len(history_rows) < thresholds.min_samples:
            report.skipped.append(f"coverage:{row.scope}")
            continue
        for metric in ("state_coverage", "transition_coverage"):
            current = getattr(row, metric)
            history = [getattr(entry, metric) for entry in history_rows
                       if getattr(entry, metric) is not None]
            if current is None or len(history) < thresholds.min_samples:
                continue
            report.checked += 1
            center = median(history)
            dropped_points = (center - current) * 100.0
            if dropped_points > thresholds.coverage_drop:
                report.findings.append(Finding(
                    kind="coverage", subject=row.scope, metric=metric,
                    baseline=center, current=current,
                    samples=len(history),
                    detail=f"dropped {dropped_points:.1f} points "
                           f"(threshold "
                           f"{thresholds.coverage_drop:g})"))

    # -- cache: hit-rate collapse --------------------------------------
    for row in ledger.cache_rows(run.run_id):
        history_rows = source.cache_history(
            row.cache, exclude_run=exclude, limit=thresholds.history)
        if len(history_rows) < thresholds.min_samples:
            report.skipped.append(f"cache:{row.cache}")
            continue
        report.checked += 1
        center = median([entry.hit_rate for entry in history_rows])
        if center - row.hit_rate > thresholds.cache_drop:
            report.findings.append(Finding(
                kind="cache", subject=row.cache, metric="hit_rate",
                baseline=center, current=row.hit_rate,
                samples=len(history_rows),
                detail=f"dropped {center - row.hit_rate:.2f} "
                       f"(threshold {thresholds.cache_drop:g})"))

    return report
