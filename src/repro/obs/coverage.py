"""Functional coverage: how much of a design did a test exercise?

Three coverage models, collected per configuration:

* **FSM state coverage** — which control states were ever occupied;
* **FSM transition coverage** — which declared guarded edges were ever
  taken (final states halt the machine, so their implicit self-loops
  are excluded from the possible set);
* **operator activation coverage** — which datapath operator instances
  ever did observable work (``const`` components are excluded: they
  drive their value once during elaboration and never again).

Collection is backend-aware, chosen by :meth:`CoverageCollector.attach`:

* event/oblivious kernels: a per-edge hook on the FSM controller
  records ``(state, next_state)`` pairs, and one watcher per datapath
  net marks its source operator active when the net toggles;
* compiled kernel: signal watchers would force the fast path to fall
  back (see :meth:`CompiledSimulator._fastpath_blocked`), so the
  collector instead flips :meth:`CompiledSimulator.enable_coverage`,
  which re-generates the per-state specialized code with cheap
  transition tallies; state occupancy counts and per-state live-cone
  operator sets come out of the machinery the kernel maintains anyway.

Because the backends observe different things, operator "activation"
means *output toggled* under the event kernels and *evaluated in an
occupied state's live cone* under the compiled kernel — a documented
lower/upper bound pair around the same idea (docs/observability.md).
State and transition coverage are exact under every backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["FsmCoverage", "OperatorCoverage", "ConfigurationCoverage",
           "CoverageReport", "CoverageCollector", "format_coverage"]


def _fraction(covered: int, total: int) -> float:
    return covered / total if total else 1.0


@dataclass
class FsmCoverage:
    """State + transition coverage of one Moore machine."""

    fsm: str
    possible_states: List[str] = field(default_factory=list)
    possible_transitions: List[Tuple[str, str]] = field(default_factory=list)
    states: Dict[str, int] = field(default_factory=dict)
    transitions: Dict[Tuple[str, str], int] = field(default_factory=dict)

    @classmethod
    def for_fsm(cls, fsm) -> "FsmCoverage":
        possible = []
        for name, state in fsm.states.items():
            for transition in state.transitions:
                edge = (name, transition.target)
                if edge not in possible:
                    possible.append(edge)
        return cls(fsm=fsm.name,
                   possible_states=list(fsm.states),
                   possible_transitions=possible)

    # ------------------------------------------------------------------
    def visit(self, state: str, count: int = 1) -> None:
        self.states[state] = self.states.get(state, 0) + count

    def take(self, source: str, target: str, count: int = 1) -> None:
        key = (source, target)
        self.transitions[key] = self.transitions.get(key, 0) + count

    # ------------------------------------------------------------------
    @property
    def visited_states(self) -> List[str]:
        return [name for name in self.possible_states
                if self.states.get(name, 0) > 0]

    @property
    def taken_transitions(self) -> List[Tuple[str, str]]:
        return [edge for edge in self.possible_transitions
                if self.transitions.get(edge, 0) > 0]

    @property
    def state_coverage(self) -> float:
        return _fraction(len(self.visited_states),
                         len(self.possible_states))

    @property
    def transition_coverage(self) -> float:
        return _fraction(len(self.taken_transitions),
                         len(self.possible_transitions))

    def missing_states(self) -> List[str]:
        return [name for name in self.possible_states
                if self.states.get(name, 0) == 0]

    def merge(self, other: "FsmCoverage") -> None:
        for name in other.possible_states:
            if name not in self.possible_states:
                self.possible_states.append(name)
        for edge in other.possible_transitions:
            if edge not in self.possible_transitions:
                self.possible_transitions.append(edge)
        for name, count in other.states.items():
            self.visit(name, count)
        for (source, target), count in other.transitions.items():
            self.take(source, target, count)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "fsm": self.fsm,
            "possible_states": list(self.possible_states),
            "possible_transitions": [f"{a}->{b}" for a, b
                                     in self.possible_transitions],
            "states": dict(sorted(self.states.items())),
            "transitions": {f"{a}->{b}": count for (a, b), count
                            in sorted(self.transitions.items())},
            "state_coverage": round(self.state_coverage, 4),
            "transition_coverage": round(self.transition_coverage, 4),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FsmCoverage":
        def edge(text: str) -> Tuple[str, str]:
            source, _, target = text.partition("->")
            return source, target

        return cls(
            fsm=payload["fsm"],
            possible_states=list(payload.get("possible_states", [])),
            possible_transitions=[edge(t) for t
                                  in payload.get("possible_transitions", [])],
            states=dict(payload.get("states", {})),
            transitions={edge(t): count for t, count
                         in payload.get("transitions", {}).items()},
        )


@dataclass
class OperatorCoverage:
    """Datapath operator-activation coverage."""

    datapath: str
    possible: List[str] = field(default_factory=list)
    activations: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def for_datapath(cls, datapath) -> "OperatorCoverage":
        names = [decl.name for decl in datapath.components.values()
                 if decl.type != "const"]
        return cls(datapath=datapath.name, possible=names)

    def activate(self, operator: str, count: int = 1) -> None:
        self.activations[operator] = \
            self.activations.get(operator, 0) + count

    @property
    def active_operators(self) -> List[str]:
        return [name for name in self.possible
                if self.activations.get(name, 0) > 0]

    @property
    def operator_coverage(self) -> float:
        return _fraction(len(self.active_operators), len(self.possible))

    def merge(self, other: "OperatorCoverage") -> None:
        for name in other.possible:
            if name not in self.possible:
                self.possible.append(name)
        for name, count in other.activations.items():
            self.activate(name, count)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "datapath": self.datapath,
            "possible": list(self.possible),
            "activations": dict(sorted(self.activations.items())),
            "operator_coverage": round(self.operator_coverage, 4),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "OperatorCoverage":
        return cls(datapath=payload["datapath"],
                   possible=list(payload.get("possible", [])),
                   activations=dict(payload.get("activations", {})))


@dataclass
class ConfigurationCoverage:
    """Coverage of one configuration: its FSM plus its datapath."""

    name: str
    fsm: FsmCoverage
    operators: OperatorCoverage

    def merge(self, other: "ConfigurationCoverage") -> None:
        self.fsm.merge(other.fsm)
        self.operators.merge(other.operators)

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "fsm": self.fsm.as_dict(),
                "operators": self.operators.as_dict()}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ConfigurationCoverage":
        return cls(name=payload["name"],
                   fsm=FsmCoverage.from_dict(payload["fsm"]),
                   operators=OperatorCoverage.from_dict(
                       payload["operators"]))


class CoverageReport:
    """Per-configuration coverage, mergeable across runs and designs."""

    def __init__(self) -> None:
        self.configurations: Dict[str, ConfigurationCoverage] = {}

    def add(self, coverage: ConfigurationCoverage) -> None:
        existing = self.configurations.get(coverage.name)
        if existing is None:
            self.configurations[coverage.name] = coverage
        else:
            existing.merge(coverage)

    def merge(self, other: "CoverageReport") -> None:
        for coverage in other.configurations.values():
            self.add(coverage)

    # -- aggregates ----------------------------------------------------
    def _totals(self) -> Tuple[int, int, int, int, int, int]:
        states = visited = transitions = taken = operators = active = 0
        for config in self.configurations.values():
            states += len(config.fsm.possible_states)
            visited += len(config.fsm.visited_states)
            transitions += len(config.fsm.possible_transitions)
            taken += len(config.fsm.taken_transitions)
            operators += len(config.operators.possible)
            active += len(config.operators.active_operators)
        return states, visited, transitions, taken, operators, active

    @property
    def state_coverage(self) -> float:
        states, visited, *_ = self._totals()
        return _fraction(visited, states)

    @property
    def transition_coverage(self) -> float:
        _, _, transitions, taken, _, _ = self._totals()
        return _fraction(taken, transitions)

    @property
    def operator_coverage(self) -> float:
        *_, operators, active = self._totals()
        return _fraction(active, operators)

    def items(self) -> List[str]:
        """Canonical covered-item labels (the fuzz coverage signature)."""
        labels: List[str] = []
        for config in self.configurations.values():
            labels.extend(f"s:{name}" for name in config.fsm.visited_states)
            labels.extend(f"t:{a}>{b}" for a, b
                          in config.fsm.taken_transitions)
        return sorted(set(labels))

    # -- serialization ---------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "configurations": [config.as_dict() for config
                               in self.configurations.values()],
            "state_coverage": round(self.state_coverage, 4),
            "transition_coverage": round(self.transition_coverage, 4),
            "operator_coverage": round(self.operator_coverage, 4),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CoverageReport":
        report = cls()
        for config in payload.get("configurations", []):
            report.add(ConfigurationCoverage.from_dict(config))
        return report

    def summary(self) -> str:
        return (f"coverage: states {100 * self.state_coverage:.1f}%, "
                f"transitions {100 * self.transition_coverage:.1f}%, "
                f"operators {100 * self.operator_coverage:.1f}%")

    def format(self) -> str:
        return format_coverage(self)


def format_coverage(report: CoverageReport) -> str:
    """Render per-configuration coverage as a Table I-style text table."""
    header = ("Configuration", "States", "Visited", "State%",
              "Transitions", "Taken", "Trans%", "Operators", "Active",
              "Op%")
    rows: List[List[str]] = [list(header)]

    def row(name, states, visited, transitions, taken, operators, active):
        rows.append([
            name, str(states), str(visited),
            f"{100 * _fraction(visited, states):.1f}",
            str(transitions), str(taken),
            f"{100 * _fraction(taken, transitions):.1f}",
            str(operators), str(active),
            f"{100 * _fraction(active, operators):.1f}",
        ])

    for config in report.configurations.values():
        row(config.name,
            len(config.fsm.possible_states),
            len(config.fsm.visited_states),
            len(config.fsm.possible_transitions),
            len(config.fsm.taken_transitions),
            len(config.operators.possible),
            len(config.operators.active_operators))
    if len(report.configurations) != 1:
        row("TOTAL", *report._totals())
    widths = [max(len(entry[column]) for entry in rows)
              for column in range(len(header))]
    lines = []
    for index, entry in enumerate(rows):
        lines.append("  ".join(cell.ljust(width)
                               for cell, width
                               in zip(entry, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Collection
# ----------------------------------------------------------------------
class _Attachment:
    """Live hooks for one attached design (detached at collect time)."""

    __slots__ = ("coverage", "controller", "watchers", "compiled")

    def __init__(self, coverage: ConfigurationCoverage, controller,
                 watchers, compiled: bool) -> None:
        self.coverage = coverage
        self.controller = controller
        self.watchers = watchers
        self.compiled = compiled


class CoverageCollector:
    """Attach to live :class:`SimDesign` instances, harvest after runs.

    Usage (what :class:`repro.rtg.RtgExecutor` does per configuration)::

        collector = CoverageCollector()
        collector.attach(design)     # before the design runs
        design.run_to_done()
        collector.collect(design)    # harvest + detach hooks

    ``collect`` is exception-safe to call after a timeout or crash: it
    harvests whatever partial coverage accumulated.
    """

    def __init__(self) -> None:
        self.report = CoverageReport()
        self._attached: Dict[int, _Attachment] = {}

    # ------------------------------------------------------------------
    def attach(self, design) -> None:
        from ..sim.compiled import CompiledSimulator

        sim = design.sim
        coverage = ConfigurationCoverage(
            name=design.datapath.name,
            fsm=FsmCoverage.for_fsm(design.fsm),
            operators=OperatorCoverage.for_datapath(design.datapath),
        )
        controller = design.controller
        fsm_coverage = coverage.fsm
        # entering the reset state counts as a visit under every backend
        fsm_coverage.visit(controller.state)

        def hook(state: str, next_state: str,
                 _cov: FsmCoverage = fsm_coverage) -> None:
            _cov.visit(next_state)
            _cov.take(state, next_state)

        controller.coverage_hook = hook

        watchers = []
        compiled = isinstance(sim, CompiledSimulator)
        if compiled:
            # a foreign signal watcher would block the compiled fast
            # path; instrumented codegen supplies the tallies instead
            sim.enable_coverage()
        else:
            operators = coverage.operators
            for net in design.datapath.nets.values():
                try:
                    signal = sim.get_signal(net.name)
                except Exception:  # noqa: BLE001 - unconnected net
                    continue
                source = net.source.component

                def on_change(sig, old, new, _name=source,
                              _ops=operators) -> None:
                    _ops.activate(_name)

                signal.watch(on_change)
                watchers.append((signal, on_change))

        self._attached[id(design)] = _Attachment(
            coverage, controller, watchers, compiled)

    # ------------------------------------------------------------------
    def collect(self, design) -> Optional[ConfigurationCoverage]:
        """Harvest coverage from *design*, detach hooks, fold into report."""
        attachment = self._attached.pop(id(design), None)
        if attachment is None:
            return None
        for signal, watcher in attachment.watchers:
            try:
                signal.unwatch(watcher)
            except ValueError:
                pass
        attachment.controller.coverage_hook = None

        coverage = attachment.coverage
        if attachment.compiled:
            sim = design.sim
            fsm_coverage = coverage.fsm
            for state, visits in sim.state_visits.items():
                fsm_coverage.visit(state, visits)
            for (source, target), count in sim.transition_visits.items():
                fsm_coverage.take(source, target, count)
            # the generated loop stops *before* counting occupancy of a
            # stop state, so the state the controller rests in gets its
            # entry counted here
            fsm_coverage.visit(attachment.controller.state)
            for name, count in sim.coverage_active_ops().items():
                coverage.operators.activate(name, count)
        self.report.add(coverage)
        return coverage

    def detach_all(self) -> None:
        """Drop every outstanding attachment without harvesting."""
        for attachment in self._attached.values():
            for signal, watcher in attachment.watchers:
                try:
                    signal.unwatch(watcher)
                except ValueError:
                    pass
            attachment.controller.coverage_hook = None
        self._attached.clear()
