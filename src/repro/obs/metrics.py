"""Counters and run metrics, emitted as machine-readable ``metrics.json``.

A :class:`Metrics` object is a named bag of integer counters plus
free-form info fields.  The pipeline's hot paths already maintain their
own counters (:class:`repro.sim.SimulationStats`, cache hit/miss tallies,
fuzz outcome counts); this module *harvests* them after the fact rather
than instrumenting the inner loops, so metrics collection costs nothing
while a simulation runs.

The ``as_dict`` layout is stable::

    {
      "schema": 1,
      "kind": "suite" | "flow" | "verification" | "fuzz",
      "counters": {"cycles": ..., "evaluations": ..., ...},
      "info": {...},
      "coverage": {...}          # present when coverage was collected
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

__all__ = ["Metrics", "verification_metrics", "suite_metrics",
           "flow_metrics", "campaign_metrics"]

_SCHEMA = 1

#: per-run kernel stats keys already counted at the result level;
#: merging them again would double-count
_AGGREGATED_KEYS = ("cycles", "evaluations")


class Metrics:
    """A named collection of integer counters and info values."""

    def __init__(self, kind: str = "run") -> None:
        self.kind = kind
        self.counters: Dict[str, int] = {}
        self.info: Dict[str, Any] = {}
        self.coverage: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(amount)

    def set_info(self, name: str, value: Any) -> None:
        self.info[name] = value

    def merge_counts(self, counts: Mapping[str, int],
                     prefix: str = "") -> None:
        for name, value in counts.items():
            self.inc(f"{prefix}{name}", value)

    def merge(self, other: "Metrics") -> None:
        self.merge_counts(other.counters)
        for name, value in other.info.items():
            self.info.setdefault(name, value)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "schema": _SCHEMA,
            "kind": self.kind,
            "counters": dict(sorted(self.counters.items())),
            "info": self.info,
        }
        if self.coverage is not None:
            payload["coverage"] = self.coverage
        return payload

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2,
                                   default=str) + "\n")
        return path

    def summary(self) -> str:
        shown = ", ".join(f"{name}={value}" for name, value
                          in sorted(self.counters.items()))
        return f"metrics[{self.kind}]: {shown}"

    def __repr__(self) -> str:
        return f"Metrics({self.kind!r}, {len(self.counters)} counter(s))"


# ----------------------------------------------------------------------
# Harvesters — one per pipeline artifact (duck-typed: no core imports,
# repro.core itself imports this package)
# ----------------------------------------------------------------------
def verification_metrics(result) -> Metrics:
    """Counters for one :class:`repro.core.VerificationResult` (or a
    :class:`~repro.core.BatchVerificationResult`, which additionally
    reports batch size, convergence and amortized per-lane cost)."""
    metrics = Metrics("verification")
    metrics.set_info("design", result.design)
    metrics.set_info("backend", result.backend)
    metrics.set_info("passed", result.passed)
    metrics.set_info("golden_seconds", round(result.golden_seconds, 6))
    metrics.set_info("simulation_seconds",
                     round(result.simulation_seconds, 6))
    metrics.inc("cycles", result.cycles)
    metrics.inc("reconfigurations", result.reconfigurations)
    metrics.inc("evaluations", result.evaluations)
    batch_size = getattr(result, "batch_size", None)
    if batch_size is not None:
        metrics.set_info("batch_size", batch_size)
        metrics.set_info("lanes_converged",
                         round(result.lanes_converged, 4))
        metrics.set_info("lane_seconds", round(result.lane_seconds, 6))
        metrics.set_info("batched", result.batched)
        metrics.inc("batch_lanes", batch_size)
        metrics.inc("elaborations", result.elaborations)
        metrics.inc("memories_checked",
                    sum(len(lane.checks) for lane in result.lanes))
        metrics.inc("mismatches",
                    sum(len(check.mismatches)
                        for lane in result.lanes
                        for check in lane.checks))
        return metrics
    metrics.inc("memories_checked", len(result.checks))
    metrics.inc("mismatches",
                sum(len(check.mismatches) for check in result.checks))
    rtg = result.rtg_result
    if rtg is not None:
        for run in rtg.runs:
            metrics.merge_counts({name: value
                                  for name, value in run.stats.items()
                                  if name not in _AGGREGATED_KEYS})
    coverage = getattr(result, "coverage", None)
    if coverage is not None:
        metrics.coverage = coverage.as_dict()
    return metrics


def suite_metrics(report, cache=None) -> Metrics:
    """Aggregate counters for one :class:`repro.core.SuiteReport`."""
    metrics = Metrics("suite")
    metrics.set_info("backend", report.backend)
    metrics.set_info("jobs", report.jobs)
    metrics.set_info("wall_seconds", round(report.wall_seconds, 3))
    metrics.set_info("passed", report.passed)
    metrics.inc("cases", len(report.results))
    metrics.inc("failures", len(report.failures))
    metrics.inc("cache_hits", report.cache_hits)
    for result in report.results:
        if result.cached:
            metrics.inc("cached_results")
        if result.verification is not None:
            sub = verification_metrics(result.verification)
            metrics.merge_counts(sub.counters)
    if cache is not None:
        metrics.set_info("cache_dir", str(cache.root))
        metrics.counters["cache_hits"] = cache.hits
        metrics.inc("cache_misses", cache.misses)
    coverage = getattr(report, "coverage", None)
    if coverage is not None:
        metrics.coverage = coverage.as_dict()
    return metrics


def flow_metrics(report) -> Metrics:
    """Counters for one :class:`repro.core.FlowReport`."""
    metrics = Metrics("flow")
    metrics.set_info("total_seconds", round(report.total_seconds, 6))
    metrics.set_info("stage_seconds", {
        stage.name: round(stage.seconds, 6) for stage in report.stages
    })
    metrics.inc("stages", len(report.stages))
    context = report.context
    if "passed" in context:
        metrics.set_info("passed", bool(context["passed"]))
    rtg = context.get("rtg_run")
    if rtg is not None:
        metrics.inc("cycles", rtg.total_cycles)
        metrics.inc("evaluations", rtg.total_evaluations)
        metrics.inc("reconfigurations", rtg.reconfigurations)
        for run in rtg.runs:
            metrics.merge_counts({name: value
                                  for name, value in run.stats.items()
                                  if name not in _AGGREGATED_KEYS})
    coverage = context.get("coverage")
    if coverage is not None:
        metrics.coverage = coverage.as_dict()
    return metrics


def campaign_metrics(report) -> Metrics:
    """Counters for one :class:`repro.fuzz.CampaignReport`."""
    metrics = Metrics("fuzz")
    metrics.set_info("seed", report.seed)
    metrics.set_info("jobs", report.jobs)
    metrics.set_info("wall_seconds", round(report.wall_seconds, 3))
    metrics.inc("iterations", report.iterations)
    metrics.inc("failures", len(report.failures))
    metrics.merge_counts(report.counts, prefix="outcome_")
    new_seeds = getattr(report, "new_coverage_seeds", None)
    if new_seeds is not None:
        metrics.inc("new_coverage_seeds", len(new_seeds))
        coverage_items = getattr(report, "coverage_items", None)
        if coverage_items is not None:
            metrics.inc("coverage_items", len(coverage_items))
    waves = getattr(report, "pool_waves", 0)
    if waves:
        metrics.inc("pool_waves", waves)
        metrics.set_info("pool_startup_seconds",
                         round(report.pool_startup_seconds, 4))
        metrics.set_info("pool_reuse_saved_seconds",
                         round(report.pool_reuse_saved_seconds, 4))
    return metrics
