"""Counters and run metrics, emitted as machine-readable ``metrics.json``.

A :class:`Metrics` object is a named bag of integer counters plus
free-form info fields.  The pipeline's hot paths already maintain their
own counters (:class:`repro.sim.SimulationStats`, cache hit/miss tallies,
fuzz outcome counts); this module *harvests* them after the fact rather
than instrumenting the inner loops, so metrics collection costs nothing
while a simulation runs.

The ``as_dict`` layout is stable::

    {
      "schema": 1,
      "kind": "suite" | "flow" | "verification" | "fuzz",
      "counters": {"cycles": ..., "evaluations": ..., ...},
      "info": {...},
      "coverage": {...}          # present when coverage was collected
    }
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

__all__ = ["Metrics", "Histogram", "render_prometheus_histogram",
           "verification_metrics", "suite_metrics",
           "flow_metrics", "campaign_metrics", "serve_metrics"]

_SCHEMA = 1

#: per-run kernel stats keys already counted at the result level;
#: merging them again would double-count
_AGGREGATED_KEYS = ("cycles", "evaluations")


class Metrics:
    """A named collection of integer counters and info values."""

    def __init__(self, kind: str = "run") -> None:
        self.kind = kind
        self.counters: Dict[str, int] = {}
        self.info: Dict[str, Any] = {}
        self.coverage: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(amount)

    def set_info(self, name: str, value: Any) -> None:
        self.info[name] = value

    def merge_counts(self, counts: Mapping[str, int],
                     prefix: str = "") -> None:
        for name, value in counts.items():
            self.inc(f"{prefix}{name}", value)

    def merge(self, other: "Metrics") -> None:
        self.merge_counts(other.counters)
        for name, value in other.info.items():
            self.info.setdefault(name, value)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "schema": _SCHEMA,
            "kind": self.kind,
            "counters": dict(sorted(self.counters.items())),
            "info": self.info,
        }
        if self.coverage is not None:
            payload["coverage"] = self.coverage
        return payload

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2,
                                   default=str) + "\n")
        return path

    def summary(self) -> str:
        shown = ", ".join(f"{name}={value}" for name, value
                          in sorted(self.counters.items()))
        return f"metrics[{self.kind}]: {shown}"

    def __repr__(self) -> str:
        return f"Metrics({self.kind!r}, {len(self.counters)} counter(s))"


# ----------------------------------------------------------------------
# Histograms — mergeable log-bucket distributions
# ----------------------------------------------------------------------
#: sub-buckets per octave (power of two): bucket width grows by
#: ``2**(1/8) ≈ 1.09``, so any quantile estimate is within ~4.5% of the
#: true value — plenty for latency percentiles, tiny to serialize
_HIST_GRID = 8


class Histogram:
    """A mergeable log-bucket histogram (latencies, sizes, durations).

    Values land in exponentially sized buckets: value ``v > 0`` goes to
    bucket ``floor(log2(v) * GRID)``, covering ``[2**(i/GRID),
    2**((i+1)/GRID))``.  Like the :class:`Metrics` counter bags, two
    histograms merge by addition — a fork worker can serialize its half
    (:meth:`as_dict`), ship it over a pipe, and the parent folds it in
    (:meth:`merge`) without losing any quantile fidelity beyond the
    bucket width.  Quantiles are estimated at the geometric midpoint of
    the covering bucket, clamped to the observed min/max.
    """

    __slots__ = ("name", "buckets", "zeros", "count", "total",
                 "min", "max")

    GRID = _HIST_GRID

    def __init__(self, name: str = "") -> None:
        self.name = name
        #: bucket index -> observation count (sparse)
        self.buckets: Dict[int, int] = {}
        #: observations <= 0 (a zero-length queue wait is real data)
        self.zeros = 0
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # ------------------------------------------------------------------
    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0.0:
            self.zeros += 1
            return
        index = math.floor(math.log2(value) * self.GRID)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "Histogram") -> None:
        for index, tally in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + tally
        self.zeros += other.zeros
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Estimated q-quantile (``0 <= q <= 1``); 0.0 when empty."""
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        cumulative = self.zeros
        if cumulative >= target:
            return max(self.min or 0.0, 0.0)
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                estimate = 2.0 ** ((index + 0.5) / self.GRID)
                if self.min is not None:
                    estimate = max(estimate, self.min)
                if self.max is not None:
                    estimate = min(estimate, self.max)
                return estimate
        return self.max if self.max is not None else 0.0

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    # ------------------------------------------------------------------
    def bucket_edges(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_edge, count)`` pairs, Prometheus-style
        (zeros fold into the first finite bucket; +Inf is implicit via
        :attr:`count`)."""
        edges: List[Tuple[float, int]] = []
        cumulative = self.zeros
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            edges.append((2.0 ** ((index + 1) / self.GRID), cumulative))
        return edges

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": _SCHEMA,
            "grid": self.GRID,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "zeros": self.zeros,
            "buckets": {str(index): tally
                        for index, tally in sorted(self.buckets.items())},
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any],
                  name: str = "") -> "Histogram":
        hist = cls(name)
        if not isinstance(data, Mapping):
            return hist
        grid = int(data.get("grid", cls.GRID) or cls.GRID)
        raw = data.get("buckets") or {}
        for index, tally in raw.items():
            index = int(index)
            if grid != cls.GRID:  # re-grid a foreign serialization
                index = math.floor((index / grid) * cls.GRID)
            hist.buckets[index] = hist.buckets.get(index, 0) + int(tally)
        hist.zeros = int(data.get("zeros", 0) or 0)
        hist.count = int(data.get("count", 0) or 0)
        hist.total = float(data.get("sum", 0.0) or 0.0)
        hist.min = data.get("min")
        hist.max = data.get("max")
        if hist.min is not None:
            hist.min = float(hist.min)
        if hist.max is not None:
            hist.max = float(hist.max)
        return hist

    def summary(self) -> Dict[str, Any]:
        """The quantile digest persisted into ledger rows / reports."""
        return {"count": self.count, "sum": round(self.total, 9),
                "min": self.min, "max": self.max,
                "p50": self.quantile(0.50), "p90": self.quantile(0.90),
                "p99": self.quantile(0.99)}

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"p50={self.quantile(0.5):.6g})")


def _prom_label_text(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        '%s="%s"' % (key, str(value).replace("\\", "\\\\")
                     .replace('"', '\\"').replace("\n", "\\n"))
        for key, value in sorted(labels.items()))
    return "{" + rendered + "}"


def render_prometheus_histogram(
        name: str,
        series: Iterable[Tuple[Mapping[str, Any], "Histogram"]],
        help_text: str = "") -> List[str]:
    """One Prometheus ``histogram`` family: cumulative ``_bucket`` lines
    (ending at ``+Inf``), ``_sum`` and ``_count`` per labelled series."""
    lines = [f"# HELP {name} {help_text or name}",
             f"# TYPE {name} histogram"]
    for labels, hist in series:
        for edge, cumulative in hist.bucket_edges():
            tags = dict(labels)
            tags["le"] = "%.9g" % edge
            lines.append(f"{name}_bucket{_prom_label_text(tags)} "
                         f"{cumulative}")
        tags = dict(labels)
        tags["le"] = "+Inf"
        lines.append(f"{name}_bucket{_prom_label_text(tags)} {hist.count}")
        lines.append(f"{name}_sum{_prom_label_text(dict(labels))} "
                     f"{hist.total:.9g}")
        lines.append(f"{name}_count{_prom_label_text(dict(labels))} "
                     f"{hist.count}")
    return lines


# ----------------------------------------------------------------------
# Harvesters — one per pipeline artifact (duck-typed: no core imports,
# repro.core itself imports this package)
# ----------------------------------------------------------------------
def verification_metrics(result) -> Metrics:
    """Counters for one :class:`repro.core.VerificationResult` (or a
    :class:`~repro.core.BatchVerificationResult`, which additionally
    reports batch size, convergence and amortized per-lane cost)."""
    metrics = Metrics("verification")
    metrics.set_info("design", result.design)
    metrics.set_info("backend", result.backend)
    metrics.set_info("passed", result.passed)
    metrics.set_info("golden_seconds", round(result.golden_seconds, 6))
    metrics.set_info("simulation_seconds",
                     round(result.simulation_seconds, 6))
    metrics.inc("cycles", result.cycles)
    metrics.inc("reconfigurations", result.reconfigurations)
    metrics.inc("evaluations", result.evaluations)
    batch_size = getattr(result, "batch_size", None)
    if batch_size is not None:
        metrics.set_info("batch_size", batch_size)
        metrics.set_info("lanes_converged",
                         round(result.lanes_converged, 4))
        metrics.set_info("lane_seconds", round(result.lane_seconds, 6))
        metrics.set_info("batched", result.batched)
        metrics.inc("batch_lanes", batch_size)
        metrics.inc("elaborations", result.elaborations)
        metrics.inc("memories_checked",
                    sum(len(lane.checks) for lane in result.lanes))
        metrics.inc("mismatches",
                    sum(len(check.mismatches)
                        for lane in result.lanes
                        for check in lane.checks))
        return metrics
    metrics.inc("memories_checked", len(result.checks))
    metrics.inc("mismatches",
                sum(len(check.mismatches) for check in result.checks))
    rtg = result.rtg_result
    if rtg is not None:
        for run in rtg.runs:
            metrics.merge_counts({name: value
                                  for name, value in run.stats.items()
                                  if name not in _AGGREGATED_KEYS})
    coverage = getattr(result, "coverage", None)
    if coverage is not None:
        metrics.coverage = coverage.as_dict()
    return metrics


def suite_metrics(report, cache=None) -> Metrics:
    """Aggregate counters for one :class:`repro.core.SuiteReport`."""
    metrics = Metrics("suite")
    metrics.set_info("backend", report.backend)
    metrics.set_info("jobs", report.jobs)
    metrics.set_info("wall_seconds", round(report.wall_seconds, 3))
    metrics.set_info("passed", report.passed)
    metrics.inc("cases", len(report.results))
    metrics.inc("failures", len(report.failures))
    metrics.inc("cache_hits", report.cache_hits)
    for result in report.results:
        if result.cached:
            metrics.inc("cached_results")
        if result.verification is not None:
            sub = verification_metrics(result.verification)
            metrics.merge_counts(sub.counters)
    if cache is not None:
        metrics.set_info("cache_dir", str(cache.root))
        metrics.counters["cache_hits"] = cache.hits
        metrics.inc("cache_misses", cache.misses)
    coverage = getattr(report, "coverage", None)
    if coverage is not None:
        metrics.coverage = coverage.as_dict()
    return metrics


def flow_metrics(report) -> Metrics:
    """Counters for one :class:`repro.core.FlowReport`."""
    metrics = Metrics("flow")
    metrics.set_info("total_seconds", round(report.total_seconds, 6))
    metrics.set_info("stage_seconds", {
        stage.name: round(stage.seconds, 6) for stage in report.stages
    })
    metrics.inc("stages", len(report.stages))
    context = report.context
    if "passed" in context:
        metrics.set_info("passed", bool(context["passed"]))
    rtg = context.get("rtg_run")
    if rtg is not None:
        metrics.inc("cycles", rtg.total_cycles)
        metrics.inc("evaluations", rtg.total_evaluations)
        metrics.inc("reconfigurations", rtg.reconfigurations)
        for run in rtg.runs:
            metrics.merge_counts({name: value
                                  for name, value in run.stats.items()
                                  if name not in _AGGREGATED_KEYS})
    coverage = context.get("coverage")
    if coverage is not None:
        metrics.coverage = coverage.as_dict()
    return metrics


def campaign_metrics(report) -> Metrics:
    """Counters for one :class:`repro.fuzz.CampaignReport`."""
    metrics = Metrics("fuzz")
    metrics.set_info("seed", report.seed)
    metrics.set_info("jobs", report.jobs)
    metrics.set_info("wall_seconds", round(report.wall_seconds, 3))
    metrics.inc("iterations", report.iterations)
    metrics.inc("failures", len(report.failures))
    metrics.merge_counts(report.counts, prefix="outcome_")
    new_seeds = getattr(report, "new_coverage_seeds", None)
    if new_seeds is not None:
        metrics.inc("new_coverage_seeds", len(new_seeds))
        coverage_items = getattr(report, "coverage_items", None)
        if coverage_items is not None:
            metrics.inc("coverage_items", len(coverage_items))
    waves = getattr(report, "pool_waves", 0)
    if waves:
        metrics.inc("pool_waves", waves)
        metrics.set_info("pool_startup_seconds",
                         round(report.pool_startup_seconds, 4))
        metrics.set_info("pool_reuse_saved_seconds",
                         round(report.pool_reuse_saved_seconds, 4))
    return metrics


def serve_metrics(stats: Mapping[str, Any]) -> Metrics:
    """Counters for one ``repro serve`` session (the scheduler's final
    :meth:`~repro.serve.ServeScheduler.stats` dict): integer tallies
    become counters, rates and wall time become info fields, and the
    latency histograms collapse to their quantile summaries."""
    metrics = Metrics("serve")
    for name, value in stats.items():
        if name == "histograms" or isinstance(value, bool):
            continue
        if isinstance(value, int):
            metrics.inc(name, value)
        elif isinstance(value, float):
            metrics.set_info(name, round(value, 6))
        elif isinstance(value, (list, str)):
            metrics.set_info(name, value)
    histograms = stats.get("histograms")
    if isinstance(histograms, Mapping):
        metrics.set_info("histograms", {
            name: Histogram.from_dict(data, name).summary()
            for name, data in sorted(histograms.items())})
    return metrics
