"""Hierarchical timing spans with a multi-process JSONL recorder.

A :class:`Span` measures one phase of the pipeline (a compile, a
configuration simulation, a fuzz iteration) with monotonic timing and
arbitrary key/value attributes.  Completed spans are appended to a JSONL
*events file*, one JSON object per line, by whichever process finished
them:

* the events file is opened ``O_APPEND``, and each span is written with
  a single ``write`` call, so the fork-based worker pools
  (:meth:`repro.core.TestSuite.run`, fuzz campaigns) can share the
  recorder they inherited from the parent — every worker's spans land in
  the same file tagged with the worker's pid;
* timestamps come from ``time.monotonic_ns()``, which on Linux is a
  system-wide clock, so parent and worker spans share one timeline.

:meth:`TraceRecorder.export_chrome` (or the module-level
:func:`export_chrome_trace`) converts the events file into Chrome
``trace_event`` JSON that chrome://tracing and https://ui.perfetto.dev
open directly: one track per process/thread, spans nested by time.

The module keeps one globally installed recorder.  When none is
installed, :func:`span` returns a shared no-op object, so instrumented
code pays one ``None`` check per span — nothing else.

Spans carry identity: every recorded span has a process-unique
``span_id``, belongs to a ``trace_id`` (inherited from the enclosing
span, or freshly minted for a root) and names its ``parent_id``.  The
triple rides in the event's ``args``, so a Chrome/Perfetto trace can be
re-stitched per logical operation even when its spans landed from
different processes.  :func:`current_context` / :class:`trace_context`
move that identity across process boundaries: serialize the context
dict onto a wire message, adopt it on the far side, and spans opened
there become children of the originating span.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

__all__ = ["Span", "TraceRecorder", "recording", "span", "event",
           "start_span", "active_recorder", "install", "uninstall",
           "export_chrome_trace", "new_trace_id", "current_context",
           "trace_context", "MAX_ATTR_CHARS"]

#: per-attribute payload cap: any single span attribute whose JSON
#: rendering exceeds this many characters is truncated before it is
#: written, and the span gains a ``"truncated": true`` marker.  A long
#: fuzz campaign attaches failure details (tracebacks, mismatch dumps)
#: to its spans; uncapped, a multi-hour run can inflate the events file
#: into a multi-hundred-MB trace no viewer will open.
MAX_ATTR_CHARS = 1024


def _clip_attrs(attrs: Dict[str, Any],
                limit: int = MAX_ATTR_CHARS) -> Dict[str, Any]:
    """Bound each attribute value's serialized size (keys are code-
    controlled and short; values may carry arbitrary runtime data)."""
    clipped: Optional[Dict[str, Any]] = None
    for key, value in attrs.items():
        try:
            rendered = json.dumps(value, default=str)
        except (TypeError, ValueError):
            rendered = json.dumps(str(value))
        if len(rendered) <= limit:
            continue
        if clipped is None:
            clipped = dict(attrs)
        text = rendered[:limit]
        clipped[key] = f"{text}… [{len(rendered) - limit} chars dropped]"
        clipped["truncated"] = True
    return attrs if clipped is None else clipped


# ----------------------------------------------------------------------
# Trace identity: span ids, trace ids, the per-thread context stack
# ----------------------------------------------------------------------
_SPAN_SEQ = itertools.count(1)
_CTX = threading.local()


def _ctx_stack() -> list:
    stack = getattr(_CTX, "stack", None)
    if stack is None:
        stack = []
        _CTX.stack = stack
    return stack


def _new_span_id() -> str:
    """Process-unique span id (pid-prefixed so forked workers never
    collide with the parent's counter they inherited)."""
    return f"{os.getpid():x}-{next(_SPAN_SEQ):x}"


def new_trace_id() -> str:
    """A fresh 64-bit trace id (one logical operation end to end)."""
    return os.urandom(8).hex()


def current_context() -> Optional[Dict[str, str]]:
    """The innermost live span as a wire-safe ``{"trace_id", "parent"}``
    dict, or ``None`` outside any span/adopted context."""
    stack = getattr(_CTX, "stack", None)
    if stack:
        trace_id, span_id = stack[-1]
        return {"trace_id": trace_id, "parent": span_id}
    return None


class trace_context:
    """Adopt a propagated context for a ``with`` block: spans opened
    inside become children of the remote parent.  A ``None`` or
    malformed context is a no-op, so receivers can pass whatever the
    wire carried without checking."""

    __slots__ = ("_entry",)

    def __init__(self, ctx: Optional[Mapping]) -> None:
        if isinstance(ctx, Mapping) and ctx.get("trace_id"):
            self._entry = (str(ctx["trace_id"]),
                           str(ctx.get("parent") or ""))
        else:
            self._entry = None

    def __enter__(self) -> "trace_context":
        if self._entry is not None:
            _ctx_stack().append(self._entry)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._entry is not None:
            _remove_entry(self._entry)
        return False


def _remove_entry(entry) -> None:
    """Drop one stack entry wherever it sits: long-lived spans close
    out of LIFO order (a job span outlives the submits queued after
    it), so a blind pop would corrupt unrelated parentage."""
    stack = getattr(_CTX, "stack", None)
    if not stack:
        return
    for position in range(len(stack) - 1, -1, -1):
        if stack[position] is entry:
            del stack[position]
            return


class _NullSpan:
    """Shared do-nothing span used when no recorder is installed."""

    __slots__ = ()

    span_id = None
    trace_id = None
    parent_id = None
    context = None

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def finish(self) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """One timed phase: context manager around a block of work.

    Two lifecycles share this class.  ``with span(...)`` is *ambient*:
    the span joins the thread's context stack, so spans opened inside
    the block become its children.  :func:`start_span` is *detached*:
    the span takes its parent from the stack (or an explicit context)
    at start but never joins it, for operations that outlive the
    current call frame — close those with :meth:`finish`.
    """

    __slots__ = ("name", "category", "attrs", "_recorder", "_start_ns",
                 "span_id", "trace_id", "parent_id", "_parent", "_entry")

    def __init__(self, recorder: "TraceRecorder", name: str,
                 category: str, attrs: Dict[str, Any],
                 parent: Optional[Mapping] = None) -> None:
        self.name = name
        self.category = category
        self.attrs = attrs
        self._recorder = recorder
        self._start_ns: Optional[int] = None
        self.span_id: Optional[str] = None
        self.trace_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self._parent = parent
        self._entry = None

    def set(self, key: str, value: Any) -> "Span":
        """Attach an attribute (shows up under ``args`` in the viewer)."""
        self.attrs[key] = value
        return self

    @property
    def context(self) -> Dict[str, str]:
        """Wire-safe context for children of this span (valid after the
        span has started)."""
        return {"trace_id": self.trace_id or "",
                "parent": self.span_id or ""}

    # -- lifecycle ------------------------------------------------------
    def _begin(self) -> None:
        self._start_ns = time.monotonic_ns()
        ctx = self._parent
        if not (isinstance(ctx, Mapping) and ctx.get("trace_id")):
            ctx = current_context()
        if ctx:
            self.trace_id = str(ctx["trace_id"])
            self.parent_id = str(ctx.get("parent") or "") or None
        else:
            self.trace_id = new_trace_id()
            self.parent_id = None
        self.span_id = _new_span_id()

    def _end(self, exc_type=None) -> None:
        end_ns = time.monotonic_ns()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._recorder.record(self, end_ns)

    def start(self) -> "Span":
        """Begin a detached span (no stack entry); pair with finish()."""
        self._begin()
        return self

    def finish(self) -> None:
        """Close a detached span and record it."""
        self._end()

    def __enter__(self) -> "Span":
        self._begin()
        self._entry = (self.trace_id, self.span_id)
        _ctx_stack().append(self._entry)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._entry is not None:
            _remove_entry(self._entry)
            self._entry = None
        self._end(exc_type)
        return False


class TraceRecorder:
    """Appends completed spans to a JSONL events file.

    The recorder owns the file: constructing one truncates *path*.
    Forked children inherit the open descriptor and append alongside
    the parent.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._t0_ns = time.monotonic_ns()
        self._fd: Optional[int] = os.open(
            str(self.path),
            os.O_WRONLY | os.O_CREAT | os.O_TRUNC | os.O_APPEND,
            0o644,
        )

    # ------------------------------------------------------------------
    def record(self, span: Span, end_ns: int) -> None:
        """Write one completed span (called from Span.__exit__)."""
        start_ns = span._start_ns if span._start_ns is not None else end_ns
        args = dict(_clip_attrs(span.attrs))
        if span.span_id is not None:
            args["span_id"] = span.span_id
            args["trace_id"] = span.trace_id
            if span.parent_id:
                args["parent_id"] = span.parent_id
        self._write({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": (start_ns - self._t0_ns) / 1000.0,
            "dur": max(end_ns - start_ns, 0) / 1000.0,
            "pid": os.getpid(),
            "tid": threading.get_ident() & 0x7FFFFFFF,
            "args": args,
        })

    def instant(self, name: str, category: str = "repro",
                **attrs: Any) -> None:
        """Record a zero-duration marker event."""
        self._write({
            "name": name,
            "cat": category,
            "ph": "i",
            "s": "p",
            "ts": (time.monotonic_ns() - self._t0_ns) / 1000.0,
            "pid": os.getpid(),
            "tid": threading.get_ident() & 0x7FFFFFFF,
            "args": _clip_attrs(attrs),
        })

    def _write(self, payload: Dict[str, Any]) -> None:
        if self._fd is None:
            return
        line = json.dumps(payload, default=str) + "\n"
        data = line.encode("utf-8")
        # one write() per line + O_APPEND keeps concurrent writers from
        # interleaving partial lines (the exporter skips any stragglers)
        with self._lock:
            if self._fd is not None:
                os.write(self._fd, data)

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def export_chrome(self, out_path: Union[str, Path]) -> int:
        """Convert the events file to Chrome trace JSON; returns #events."""
        return export_chrome_trace(self.path, out_path)

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def export_chrome_trace(events_path: Union[str, Path],
                        out_path: Union[str, Path]) -> int:
    """Wrap a JSONL events file into ``{"traceEvents": [...]}`` JSON.

    Lines that fail to parse (a torn write from a killed worker) are
    skipped rather than poisoning the whole trace.
    """
    events: List[Dict[str, Any]] = []
    try:
        text = Path(events_path).read_text()
    except OSError:
        text = ""
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            parsed = json.loads(line)
        except ValueError:
            continue
        if isinstance(parsed, dict):
            events.append(parsed)
    events.sort(key=lambda entry: entry.get("ts", 0.0))
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    out = Path(out_path)
    if out.parent and not out.parent.exists():
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=1) + "\n")
    return len(events)


# ----------------------------------------------------------------------
# The globally installed recorder
# ----------------------------------------------------------------------
_ACTIVE: Optional[TraceRecorder] = None


def install(recorder: TraceRecorder) -> TraceRecorder:
    """Make *recorder* the process-wide span sink."""
    global _ACTIVE
    _ACTIVE = recorder
    return recorder


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def active_recorder() -> Optional[TraceRecorder]:
    return _ACTIVE


def span(name: str, category: str = "repro",
         parent: Optional[Mapping] = None, **attrs: Any):
    """A context-manager span, or a shared no-op when not recording.

    ``parent`` overrides the ambient context with an explicit
    ``{"trace_id", "parent"}`` dict (e.g. one received over a wire).
    """
    recorder = _ACTIVE
    if recorder is None:
        return _NULL_SPAN
    return Span(recorder, name, category, dict(attrs), parent=parent)


def start_span(name: str, category: str = "repro",
               parent: Optional[Mapping] = None, **attrs: Any):
    """Begin a *detached* span immediately; the caller owns its end.

    Detached spans measure operations that outlive the current call
    frame (a queued job between submit and reply): they resolve their
    parent now but never join the thread's context stack, and they are
    recorded when :meth:`Span.finish` is called.  Hand
    :attr:`Span.context` to children (or across a process boundary).
    Returns the shared no-op span when no recorder is installed.
    """
    recorder = _ACTIVE
    if recorder is None:
        return _NULL_SPAN
    return Span(recorder, name, category, dict(attrs),
                parent=parent).start()


def event(name: str, category: str = "repro", **attrs: Any) -> None:
    """An instant marker, dropped silently when not recording."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.instant(name, category, **attrs)


class recording:
    """Record spans for the duration of a ``with`` block::

        with recording("events.jsonl") as rec:
            ...  # span() calls are live here
        rec.export_chrome("trace.json")

    Installs a fresh :class:`TraceRecorder` globally on entry; on exit
    the recorder is uninstalled and closed (the events file remains for
    export).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.recorder = TraceRecorder(path)

    def __enter__(self) -> TraceRecorder:
        return install(self.recorder)

    def __exit__(self, exc_type, exc, tb) -> None:
        if _ACTIVE is self.recorder:
            uninstall()
        self.recorder.close()
