"""Divergence triage: explain *where* and *why* a failing run diverged.

The infrastructure's verdicts — fuzz ``mismatch``, inject ``sdc``,
differential backend disagreement — say only that two executions ended
differently.  This module turns a verdict into an explanation:

1. **Lockstep replay.**  The failing pair (fault-vs-fault-free,
   backend-vs-backend, or failing-backend-vs-golden) is re-elaborated
   as two independent simulations of the same configuration and driven
   forward together.
2. **First-divergence bisection.**  A coarse checkpoint pass advances
   both sides in ``stride``-cycle chunks on the fast kernel path and
   compares cheap state snapshots (FSM state, every signal value, the
   output memories) at each boundary.  On the first differing
   checkpoint, both sides are re-elaborated, fast-forwarded to the last
   agreeing checkpoint, and replayed cycle-by-cycle under a bounded
   :class:`~repro.sim.wavecapture.WaveCapture` ring until the **first
   divergent cycle and nets** are pinned — no full trace is ever
   stored, so the cost is O(signals × window), not O(signals × cycles).
3. **Cone-of-influence ranking.**  From the first divergent nets the
   datapath graph is walked backwards (net → source component → its
   input nets) to rank suspect operators, registers and FSM states:
   divergence *origins* (divergent nets none of whose fan-in is
   divergent, or register outputs that newly diverged across an edge)
   score highest, then other divergent nets, then upstream cone members
   decaying with distance.
4. **Reports.**  A machine-readable JSON triage record (attached to the
   run ledger as a ``triage`` row) and a self-contained offline HTML
   report: waveform window around the divergence with divergent cells
   highlighted, the suspect cone, and the FSM state timeline of both
   sides.

Works identically on the event, compiled and traced kernels: capture
never installs watchers, and a post-step resync re-forces stuck-at
faults that the fast kernels' post-run settle would otherwise wash out
of the observable view (the kernel *ran* with the fault; only the
boundary view needs re-forcing).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..sim.wavecapture import DEFAULT_WINDOW, WaveCapture
from .trace import span

__all__ = [
    "TRIAGE_SCHEMA", "TriageError", "Suspect", "TriageRecord",
    "TriageResult", "Divergence", "locate_divergence", "triage_fault",
    "triage_backends", "triage_fuzz_entry", "render_triage_html",
]

TRIAGE_SCHEMA = 1
DEFAULT_MAX_CYCLES = 1_000_000
#: suspect-list length cap in records and reports
SUSPECT_LIMIT = 24
#: waveform rows shown in the HTML report
REPORT_SIGNAL_LIMIT = 14


class TriageError(RuntimeError):
    """Triage could not run on this target (unsupported shape)."""


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
@dataclass
class Suspect:
    """One ranked member of the cone of influence."""

    name: str
    #: "net" | "register" | "control" | "state" | "memory"
    kind: str
    #: source component of the net ("" for states/controls)
    component: str = ""
    #: component type — the operator ("reg", "add", "mux", "sram", ...)
    operator: str = ""
    #: BFS distance upstream from the first divergent nets
    distance: int = 0
    #: whether this signal actually differed at the divergence cycle
    divergent: bool = False
    #: whether this is a divergence *origin* (no divergent fan-in)
    origin: bool = False
    score: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.kind,
                "component": self.component, "operator": self.operator,
                "distance": self.distance, "divergent": self.divergent,
                "origin": self.origin, "score": round(self.score, 4)}


@dataclass
class TriageRecord:
    """The machine-readable triage verdict (ledger ``extra`` payload)."""

    kind: str            # fault | backend | fuzz-mismatch | campaign-sdc
    app: str
    backend_ref: str
    backend_sub: str
    #: "cycle" (net-level first divergence), "memory" (memories differ
    #: with no observed net divergence), "none" (no divergence found)
    mode: str
    cycle: Optional[int] = None
    net: Optional[str] = None
    nets: List[str] = field(default_factory=list)
    suspects: List[Suspect] = field(default_factory=list)
    state_ref: Optional[str] = None
    state_sub: Optional[str] = None
    window: Dict[str, Any] = field(default_factory=dict)
    checkpoints: int = 0
    stride: int = 0
    compared_cycles: int = 0
    fault: Optional[Dict[str, Any]] = None
    memory: Optional[Dict[str, Any]] = None
    detail: str = ""

    @property
    def top_suspect(self) -> Optional[str]:
        return self.suspects[0].name if self.suspects else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": TRIAGE_SCHEMA, "kind": self.kind, "app": self.app,
            "backend_ref": self.backend_ref, "backend_sub": self.backend_sub,
            "mode": self.mode, "cycle": self.cycle, "net": self.net,
            "nets": list(self.nets),
            "suspects": [s.to_dict() for s in self.suspects],
            "top_suspect": self.top_suspect,
            "state_ref": self.state_ref, "state_sub": self.state_sub,
            "window": dict(self.window), "checkpoints": self.checkpoints,
            "stride": self.stride, "compared_cycles": self.compared_cycles,
            "fault": self.fault, "memory": self.memory,
            "detail": self.detail,
        }

    def describe(self) -> str:
        if self.mode == "cycle":
            head = (f"first divergence at cycle {self.cycle} on "
                    f"{self.net or '<fsm state>'}")
        elif self.mode == "memory":
            where = self.memory or {}
            head = (f"memory divergence in {where.get('name')!r} "
                    f"word {where.get('word')}")
        else:
            head = "no divergence located"
        top = f"; top suspect {self.top_suspect}" if self.suspects else ""
        return (f"[{self.kind}] {self.app} "
                f"{self.backend_ref} vs {self.backend_sub}: {head}{top}")


@dataclass
class TriageResult:
    """Record plus the captured waveform windows backing the report."""

    record: TriageRecord
    capture_ref: Optional[WaveCapture] = None
    capture_sub: Optional[WaveCapture] = None

    def write(self, out_dir: Union[str, Path], basename: str, *,
              html: bool = True) -> Dict[str, Path]:
        """Write ``<basename>.json`` (+ ``.html``) under *out_dir*."""
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        paths: Dict[str, Path] = {}
        json_path = out_dir / f"{basename}.json"
        json_path.write_text(
            json.dumps(self.record.to_dict(), indent=2) + "\n",
            encoding="utf-8")
        paths["json"] = json_path
        if html:
            html_path = out_dir / f"{basename}.html"
            html_path.write_text(render_triage_html(self), encoding="utf-8")
            paths["html"] = html_path
        return paths


# ----------------------------------------------------------------------
# Lockstep sides
# ----------------------------------------------------------------------
def _fault_resync(sim) -> None:
    """Re-force a kernel stuck-at into the post-run signal view.

    The compiled/traced kernels apply stuck-at forcing inside the
    generated code, but ``_post_run``'s clean settle recomputes
    combinational nets without it.  Re-forcing the target and settling
    its fanout makes the boundary view identical to the event kernel's
    (where the watcher forces during settle).  No-op without a spec.
    """
    spec = getattr(sim, "fault_spec", None)
    if spec is None or spec.kind != "stuck":
        return
    signal = sim._signals.get(spec.signal)
    if signal is None:
        return
    forced = (signal.value & spec.and_mask) | spec.or_mask
    if forced != signal.value:
        signal.value = forced
        sim._worklist.extend(signal.sinks)
        sim.settle()


class _Side:
    """One side of a lockstep pair: a fresh single-config elaboration."""

    def __init__(self, datapath, fsm, rtg, images, *, backend: str,
                 fault=None, fsm_mode: str = "generated",
                 compare_memories: Sequence[str] = ()) -> None:
        from ..rtg.context import ReconfigurationContext
        from ..translate.to_sim import build_simulation
        if fault is not None and fault.kind == "mem_flip":
            from ..inject.campaign import apply_mem_flip
            apply_mem_flip(images, fault)
        self.context = ReconfigurationContext.from_rtg(rtg, initial=images)
        self.design = build_simulation(
            datapath, fsm, memories=self.context.memories,
            fsm_mode=fsm_mode, backend=backend)
        self.handle = None
        if fault is not None and fault.kind in ("stuck", "reg_flip"):
            from ..inject.hooks import attach_fault
            self.handle = attach_fault(self.design, fault)
        self.backend = backend
        self._signals = sorted(self.design.sim.signals.items())
        self._memory_names = list(compare_memories)
        self._memories = [self.context.memory(name)
                          for name in self._memory_names]

    @property
    def signal_names(self) -> List[str]:
        return [name for name, _ in self._signals]

    @property
    def done(self) -> bool:
        signal = self.design.done_signal
        return bool(signal is not None and signal.value)

    def advance(self, n: int) -> None:
        self.design.sim.run_cycles(n)
        _fault_resync(self.design.sim)

    def snapshot(self) -> Tuple:
        return (self.design.controller.state,
                tuple(sig.value for _, sig in self._signals),
                self.memory_words())

    def memory_words(self) -> Tuple:
        return tuple(tuple(image) for image in self._memories)

    def memory_diff(self, other: "_Side"):
        """First differing (name, word, ours, theirs) among compared
        memories, or None."""
        for name, mine, theirs in zip(self._memory_names, self._memories,
                                      other._memories):
            for word, (a, b) in enumerate(zip(mine, theirs)):
                if a != b:
                    return (name, word, a, b)
        return None

    def release(self) -> None:
        if self.handle is not None:
            self.handle.detach()
            self.handle = None
        self.design.release()


# ----------------------------------------------------------------------
# First-divergence bisection
# ----------------------------------------------------------------------
@dataclass
class Divergence:
    """Raw output of :func:`locate_divergence`."""

    mode: str                     # "cycle" | "memory" | "none"
    cycle: Optional[int] = None
    nets: List[str] = field(default_factory=list)
    state_ref: Optional[str] = None
    state_sub: Optional[str] = None
    capture_ref: Optional[WaveCapture] = None
    capture_sub: Optional[WaveCapture] = None
    checkpoints: int = 0
    stride: int = 0
    compared_cycles: int = 0
    memory: Optional[Dict[str, Any]] = None
    detail: str = ""


def locate_divergence(make_ref, make_sub, *,
                      window: int = DEFAULT_WINDOW,
                      stride: Optional[int] = None,
                      max_cycles: int = DEFAULT_MAX_CYCLES) -> Divergence:
    """Two-pass first-divergence search over a lockstep pair.

    *make_ref* / *make_sub* are zero-argument factories returning fresh
    :class:`_Side` objects — elaboration must be deterministic, which
    every backend guarantees (the differential tests lock it).

    Pass 1 advances both sides ``stride`` cycles at a time (defaulting
    to *window*, so the replay fits the capture ring) comparing cheap
    snapshots at each checkpoint.  Pass 2 re-elaborates, fast-forwards
    to the last agreeing checkpoint, and replays cycle-by-cycle under
    wave capture to pin the exact divergence.
    """
    stride = stride if stride else window
    # ---- pass 1: coarse checkpoints on the fast path
    ref, sub = make_ref(), make_sub()
    checkpoints = 0
    agreed = 0
    cycle = 0
    interval = None
    crash = ""
    try:
        while cycle < max_cycles:
            n = min(stride, max_cycles - cycle)
            ref.advance(n)
            try:
                sub.advance(n)
            except Exception as exc:  # noqa: BLE001 - crash is a verdict
                crash = f"{type(exc).__name__}: {exc}"
                interval = (agreed, cycle + n)
                break
            cycle += n
            checkpoints += 1
            if ref.snapshot() != sub.snapshot():
                interval = (agreed, cycle)
                break
            agreed = cycle
            if ref.done and sub.done:
                break
    finally:
        ref.release()
        sub.release()

    if interval is None:
        return Divergence("none", checkpoints=checkpoints, stride=stride,
                          compared_cycles=cycle,
                          detail="sides agree at every checkpoint")

    # ---- pass 2: fine-grained window replay
    lo, hi = interval
    ref, sub = make_ref(), make_sub()
    capture_ref = WaveCapture(ref.design, window=window,
                              post_step=_fault_resync)
    capture_sub = WaveCapture(sub.design, window=window,
                              post_step=_fault_resync)
    names = [name for name in capture_ref.signal_names
             if name in set(capture_sub.signal_names)]
    try:
        capture_ref.skip(lo)
        capture_sub.skip(lo)
        planted = sub.memory_diff(ref) if lo == 0 else None
        capture_ref.sample()
        capture_sub.sample()
        div_cycle = None
        div_nets: List[str] = []
        detail = crash
        while capture_ref.cycle < hi:
            capture_ref.step(1)
            try:
                capture_sub.step(1)
            except Exception as exc:  # noqa: BLE001 - crash is a verdict
                detail = detail or f"{type(exc).__name__}: {exc}"
                div_cycle = capture_ref.cycle
                break
            a, b = capture_ref.last, capture_sub.last
            div_nets = [name for name in names
                        if a.values[name] != b.values[name]]
            if div_nets or a.state != b.state:
                div_cycle = capture_ref.cycle
                break
        if div_cycle is not None:
            # a little aftermath context, without evicting pre-context
            tail = min(8, window - len(capture_ref.samples))
            for _ in range(tail):
                capture_ref.step(1)
                try:
                    capture_sub.step(1)
                except Exception:  # noqa: BLE001 - already located
                    break
            return Divergence(
                "cycle", cycle=div_cycle, nets=div_nets,
                state_ref=_state_at(capture_ref, div_cycle),
                state_sub=_state_at(capture_sub, div_cycle),
                capture_ref=capture_ref, capture_sub=capture_sub,
                checkpoints=checkpoints, stride=stride,
                compared_cycles=max(cycle, div_cycle), detail=detail)
        # no net/state divergence inside the window: memory-level only
        memory = planted or sub.memory_diff(ref)
        where = None
        if memory is not None:
            name, word, ours, theirs = memory
            where = {"name": name, "word": word,
                     "sub": ours, "ref": theirs}
        return Divergence(
            "memory", cycle=0 if planted else hi, memory=where,
            capture_ref=capture_ref, capture_sub=capture_sub,
            checkpoints=checkpoints, stride=stride, compared_cycles=hi,
            detail=detail or "memories differ with no net divergence "
                             "in the replay window")
    finally:
        ref.release()
        sub.release()


def _state_at(capture: WaveCapture, cycle: int) -> Optional[str]:
    for entry in capture.samples:
        if entry.cycle == cycle:
            return entry.state
    return capture.last.state if capture.last is not None else None


# ----------------------------------------------------------------------
# Cone-of-influence suspect ranking
# ----------------------------------------------------------------------
def rank_suspects(datapath, divergent: Sequence[str], *,
                  state_ref: Optional[str] = None,
                  state_sub: Optional[str] = None,
                  roots: Sequence[str] = (),
                  limit: int = SUSPECT_LIMIT) -> List[Suspect]:
    """Walk the cone of influence backwards and rank suspects.

    *divergent* are the nets that differed at the first divergent
    cycle.  *roots* optionally seeds the walk when there are no
    divergent nets (memory-mode triage walks back from the memory's
    write-data net).  Origins — divergent nets with no divergent
    fan-in, and register outputs (a register that newly diverged across
    an edge is where the corruption entered, since the previous
    boundary was bit-exact) — outrank everything else.
    """
    nets = datapath.nets
    components = datapath.components
    # component name -> nets feeding any of its input ports
    feeds: Dict[str, List[str]] = {}
    for net in nets.values():
        for sink in net.sinks:
            feeds.setdefault(sink.component, []).append(net.name)

    divergent_set = set(divergent)
    control_names = set(getattr(datapath, "controls", {}) or {})
    suspects: Dict[str, Suspect] = {}

    def classify(name: str) -> Tuple[str, str, str]:
        net = nets.get(name)
        if net is None:
            kind = "control" if name in control_names else "state-output"
            return kind, "", ""
        comp = components.get(net.source.component)
        operator = comp.type if comp is not None else ""
        kind = "register" if operator == "reg" else "net"
        return kind, net.source.component, operator

    def fan_in(name: str) -> List[str]:
        net = nets.get(name)
        if net is None:
            return []
        return feeds.get(net.source.component, [])

    origins: List[str] = []
    others: List[str] = []
    for name in sorted(divergent_set):
        kind, _, operator = classify(name)
        preds = (set(fan_in(name)) & divergent_set) - {name}
        if operator == "reg" or not preds:
            origins.append(name)
        else:
            others.append(name)

    frontier: List[Tuple[str, int]] = [(name, 0) for name in origins]
    frontier += [(name, 0) for name in others]
    frontier += [(name, 0) for name in sorted(roots)
                 if name not in divergent_set]
    origin_set = set(origins)
    while frontier:
        name, distance = frontier.pop(0)
        if name in suspects:
            continue
        kind, component, operator = classify(name)
        is_div = name in divergent_set
        is_origin = name in origin_set
        base = 2.0 if is_origin else (1.2 if is_div else 1.0)
        suspects[name] = Suspect(
            name=name, kind=kind, component=component, operator=operator,
            distance=distance, divergent=is_div, origin=is_origin,
            score=base / (1 + distance))
        for upstream in sorted(set(fan_in(name))):
            if upstream not in suspects:
                frontier.append((upstream, distance + 1))

    ranked = sorted(suspects.values(), key=lambda s: (-s.score, s.name))
    if state_ref is not None and state_sub is not None \
            and state_ref != state_sub:
        ranked.insert(0 if not divergent_set else len(
            [s for s in ranked if s.origin]), Suspect(
                name=f"{state_sub} (vs {state_ref})", kind="state",
                operator="fsm", distance=0, divergent=True,
                origin=not divergent_set, score=1.9))
    return ranked[:limit]


def memory_write_cone(datapath, memory_name: str) -> List[str]:
    """Nets wired into write-data ports of *memory_name*'s SRAM ports."""
    names: List[str] = []
    for net in datapath.nets.values():
        for sink in net.sinks:
            comp = datapath.components.get(sink.component)
            if comp is None or comp.type != "sram":
                continue
            if comp.param("memory", "") == memory_name \
                    and sink.port == "din":
                names.append(net.name)
                break
    return sorted(set(names))


# ----------------------------------------------------------------------
# Producers
# ----------------------------------------------------------------------
def _single_config(design):
    if design.multi_configuration:
        raise TriageError(
            f"lockstep triage supports single-configuration designs; "
            f"{design.name!r} has {len(design.configurations)}")
    return design.configurations[0]


def _output_arrays(design) -> List[str]:
    from ..compiler.partitioning import SPILL_MEMORY
    return sorted(name for name, spec in design.arrays.items()
                  if name != SPILL_MEMORY and spec.role == "output")


def _window_info(window: int, capture: Optional[WaveCapture]) -> Dict:
    info: Dict[str, Any] = {"size": window, "truncated": False,
                            "dropped": 0, "note": ""}
    if capture is not None and capture.samples:
        info.update(start=capture.samples[0].cycle,
                    end=capture.samples[-1].cycle,
                    truncated=capture.truncated, dropped=capture.dropped,
                    note=capture.truncation_note())
    return info


def _build_record(kind: str, app: str, datapath, div: Divergence, *,
                  backend_ref: str, backend_sub: str, window: int,
                  fault=None) -> TriageRecord:
    if div.mode == "cycle":
        suspects = rank_suspects(datapath, div.nets,
                                 state_ref=div.state_ref,
                                 state_sub=div.state_sub)
        net = suspects[0].name if suspects and div.nets else None
        if net is None and div.nets:
            net = sorted(div.nets)[0]
    elif div.mode == "memory" and div.memory is not None:
        roots = memory_write_cone(datapath, div.memory["name"])
        suspects = rank_suspects(datapath, (), roots=roots)
        suspects.insert(0, Suspect(
            name=div.memory["name"], kind="memory", operator="sram",
            distance=0, divergent=True, origin=True, score=2.0))
        net = roots[0] if roots else None
    else:
        suspects, net = [], None
    return TriageRecord(
        kind=kind, app=app, backend_ref=backend_ref,
        backend_sub=backend_sub, mode=div.mode, cycle=div.cycle,
        net=net, nets=sorted(div.nets), suspects=suspects,
        state_ref=div.state_ref, state_sub=div.state_sub,
        window=_window_info(window, div.capture_sub),
        checkpoints=div.checkpoints, stride=div.stride,
        compared_cycles=div.compared_cycles,
        fault=fault.to_dict() if fault is not None else None,
        memory=div.memory, detail=div.detail)


def triage_fault(design, func, fault, inputs=None, *,
                 backend: str = "compiled",
                 window: int = DEFAULT_WINDOW,
                 stride: Optional[int] = None,
                 max_cycles: int = DEFAULT_MAX_CYCLES,
                 fsm_mode: str = "generated",
                 app: Optional[str] = None,
                 kind: str = "fault") -> TriageResult:
    """Triage one fault descriptor: fault-free vs faulted lockstep."""
    from ..core.verification import prepare_images
    config = _single_config(design)
    compare = _output_arrays(design)
    name = app or design.name

    def side(with_fault):
        return _Side(config.datapath, config.fsm, design.rtg,
                     prepare_images(design, inputs), backend=backend,
                     fault=fault if with_fault else None,
                     fsm_mode=fsm_mode, compare_memories=compare)

    with span("triage.fault", "triage", app=name, backend=backend,
              fault=fault.fault_id):
        div = locate_divergence(lambda: side(False), lambda: side(True),
                                window=window, stride=stride,
                                max_cycles=max_cycles)
    record = _build_record(kind, name, config.datapath, div,
                           backend_ref=backend, backend_sub=backend,
                           window=window, fault=fault)
    return TriageResult(record, div.capture_ref, div.capture_sub)


def triage_backends(design, inputs=None, *,
                    backend_ref: str = "event",
                    backend_sub: str = "compiled",
                    window: int = DEFAULT_WINDOW,
                    stride: Optional[int] = None,
                    max_cycles: int = DEFAULT_MAX_CYCLES,
                    fsm_mode: str = "generated",
                    app: Optional[str] = None,
                    kind: str = "backend") -> TriageResult:
    """Triage a backend disagreement: two kernels, same design."""
    from ..core.verification import prepare_images
    config = _single_config(design)
    compare = _output_arrays(design)
    name = app or design.name

    def side(backend):
        return _Side(config.datapath, config.fsm, design.rtg,
                     prepare_images(design, inputs), backend=backend,
                     fsm_mode=fsm_mode, compare_memories=compare)

    with span("triage.backends", "triage", app=name,
              ref=backend_ref, sub=backend_sub):
        div = locate_divergence(lambda: side(backend_ref),
                                lambda: side(backend_sub),
                                window=window, stride=stride,
                                max_cycles=max_cycles)
    record = _build_record(kind, name, config.datapath, div,
                           backend_ref=backend_ref,
                           backend_sub=backend_sub, window=window)
    return TriageResult(record, div.capture_ref, div.capture_sub)


def triage_fuzz_entry(entry, *,
                      window: int = DEFAULT_WINDOW,
                      stride: Optional[int] = None,
                      max_cycles: int = 250_000,
                      reference: str = "event") -> TriageResult:
    """Triage a fuzz-corpus mismatch reproducer.

    The failing backend is paired against a reference backend in
    lockstep; if the kernels agree with each other (a compiler bug, not
    a kernel bug), the final memories are compared against the golden
    software execution instead and the suspect cone is walked back from
    the mismatching output memory's write port.
    """
    from ..compiler.pipeline import compile_function
    from ..fuzz.generator import make_images
    program = entry.program
    design = compile_function(
        program.source, program.arrays, dict(program.params),
        name=program.name, word_width=program.word_width,
        n_partitions=program.n_partitions)
    failing = entry.backend or "compiled"
    backend_ref = reference if failing != reference else "compiled"

    div: Optional[Divergence] = None
    datapath = design.configurations[0].datapath
    if not design.multi_configuration:
        compare = [name for name in sorted(design.arrays)
                   if name != _spill()]

        def side(backend):
            return _Side(datapath, design.configurations[0].fsm,
                         design.rtg, make_images(program, entry.input_seed),
                         backend=backend, compare_memories=compare)

        with span("triage.fuzz", "triage", app=program.name,
                  seed=getattr(entry, "path", "")):
            div = locate_divergence(lambda: side(backend_ref),
                                    lambda: side(failing),
                                    window=window, stride=stride,
                                    max_cycles=max_cycles)
    if div is None or div.mode == "none":
        # kernels agree (or multi-config): divergence is vs golden
        golden_div = _golden_memory_divergence(
            design, program, entry.input_seed, failing, max_cycles)
        if golden_div is not None:
            golden_div.checkpoints = div.checkpoints if div else 0
            golden_div.stride = stride or window
            record = _build_record(
                "fuzz-mismatch", program.name, datapath, golden_div,
                backend_ref="golden", backend_sub=failing, window=window)
            return TriageResult(record)
    record = _build_record(
        "fuzz-mismatch", program.name, datapath,
        div if div is not None else Divergence(
            "none", detail="multi-configuration program and no golden "
                           "memory mismatch reproduced"),
        backend_ref=backend_ref, backend_sub=failing, window=window)
    return TriageResult(record,
                        div.capture_ref if div else None,
                        div.capture_sub if div else None)


def _spill() -> str:
    from ..compiler.partitioning import SPILL_MEMORY
    return SPILL_MEMORY


def _golden_memory_divergence(design, program, input_seed: int,
                              backend: str,
                              max_cycles: int) -> Optional[Divergence]:
    """Run golden + failing backend to completion; first memory diff."""
    from ..fuzz.generator import make_images
    from ..golden.runner import run_golden
    from ..rtg.context import ReconfigurationContext
    from ..rtg.executor import RtgExecutor
    from ..util.files import compare_images
    inputs = make_images(program, input_seed)
    golden = {name: image.copy() for name, image in inputs.items()}
    run_golden(program.func(), program.arrays, golden,
               dict(program.params))
    context = ReconfigurationContext.from_rtg(design.rtg, initial=inputs)
    executor = RtgExecutor(design.rtg, context, backend=backend,
                           max_cycles_per_configuration=max_cycles)
    try:
        executor.run()
    except Exception as exc:  # noqa: BLE001 - still triageable
        return Divergence("none",
                          detail=f"replay {type(exc).__name__}: {exc}")
    for name in sorted(program.arrays):
        if name == _spill():
            continue
        mismatches = compare_images(golden[name], context.memory(name),
                                    limit=1)
        if mismatches:
            hit = mismatches[0]
            return Divergence(
                "memory",
                memory={"name": name, "word": hit.address,
                        "ref": hit.expected, "sub": hit.actual},
                detail=f"{name}: {hit.describe(program.arrays[name].width)}")
    return None


# ----------------------------------------------------------------------
# HTML report
# ----------------------------------------------------------------------
_REPORT_CSS = """
body{font-family:ui-monospace,Menlo,Consolas,monospace;background:#11151a;
color:#d8dee6;margin:1.5rem;font-size:13px}
h1{font-size:1.15rem}h2{font-size:0.95rem;margin-top:1.4rem}
table{border-collapse:collapse;margin:0.4rem 0}
td,th{border:1px solid #2a3340;padding:2px 7px;text-align:right}
th{background:#1a2129;color:#9fb0c3}
td.sig{text-align:left;color:#9fb0c3}
td.div{background:#5b1f24;color:#ffb3b8;font-weight:bold}
td.first{outline:2px solid #ff5560}
.mut{color:#67788c}.origin{color:#ffd479;font-weight:bold}
.badge{display:inline-block;background:#1a2129;border:1px solid #2a3340;
border-radius:4px;padding:1px 8px;margin-right:6px}
.trunc{color:#ffd479}
"""


def _esc(text) -> str:
    import html
    return html.escape(str(text))


def render_triage_html(result: TriageResult) -> str:
    """Self-contained offline HTML report for one triage result."""
    record = result.record
    out: List[str] = []
    out.append("<!doctype html><html><head><meta charset='utf-8'>")
    out.append(f"<title>triage: {_esc(record.app)}</title>")
    out.append(f"<style>{_REPORT_CSS}</style></head><body>")
    out.append(f"<h1>Divergence triage — {_esc(record.app)}</h1>")
    out.append("<p>")
    out.append(f"<span class='badge'>kind {_esc(record.kind)}</span>")
    out.append(f"<span class='badge'>{_esc(record.backend_ref)} vs "
               f"{_esc(record.backend_sub)}</span>")
    out.append(f"<span class='badge'>mode {_esc(record.mode)}</span>")
    if record.cycle is not None:
        out.append(f"<span class='badge'>first divergent cycle "
                   f"{record.cycle}</span>")
    if record.net:
        out.append(f"<span class='badge'>net {_esc(record.net)}</span>")
    out.append("</p>")
    if record.fault:
        out.append(f"<p class='mut'>fault: "
                   f"{_esc(json.dumps(record.fault))}</p>")
    if record.memory:
        out.append(f"<p>memory divergence: <b>{_esc(record.memory['name'])}"
                   f"</b> word {record.memory['word']} — reference "
                   f"{record.memory.get('ref')}, subject "
                   f"{record.memory.get('sub')}</p>")
    if record.detail:
        out.append(f"<p class='mut'>{_esc(record.detail)}</p>")

    # suspect cone ----------------------------------------------------
    out.append("<h2>Suspect cone</h2>")
    if record.suspects:
        out.append("<table><tr><th>#</th><th>suspect</th><th>kind</th>"
                   "<th>operator</th><th>component</th><th>dist</th>"
                   "<th>score</th></tr>")
        for rank, suspect in enumerate(record.suspects, 1):
            cls = " class='origin'" if suspect.origin else ""
            out.append(
                f"<tr><td>{rank}</td><td class='sig'{cls}>"
                f"{_esc(suspect.name)}</td><td>{_esc(suspect.kind)}</td>"
                f"<td>{_esc(suspect.operator)}</td>"
                f"<td class='sig'>{_esc(suspect.component)}</td>"
                f"<td>{suspect.distance}</td>"
                f"<td>{suspect.score:.2f}</td></tr>")
        out.append("</table>")
    else:
        out.append("<p class='mut'>no suspects ranked</p>")

    # waveform window -------------------------------------------------
    ref, sub = result.capture_ref, result.capture_sub
    if ref is not None and sub is not None and ref.samples:
        ref_at = {s.cycle: s for s in ref.samples}
        sub_at = {s.cycle: s for s in sub.samples}
        cycles = sorted(set(ref_at) & set(sub_at))
        shown = [s.name for s in record.suspects
                 if s.kind in ("net", "register", "control")]
        for name in record.nets:
            if name not in shown:
                shown.append(name)
        shown = [name for name in shown
                 if name in (ref.samples[-1].values
                             if ref.samples else {})][:REPORT_SIGNAL_LIMIT]
        out.append("<h2>Waveform window</h2>")
        if record.window.get("truncated"):
            out.append(f"<p class='trunc'>window truncated "
                       f"{_esc(record.window.get('note', ''))}</p>")
        out.append("<table><tr><th>signal</th>")
        for cycle in cycles:
            mark = " class='first'" if cycle == record.cycle else ""
            out.append(f"<th{mark}>{cycle}</th>")
        out.append("</tr>")
        for name in shown:
            out.append(f"<tr><td class='sig'>{_esc(name)}</td>")
            for cycle in cycles:
                a = ref_at[cycle].values.get(name)
                b = sub_at[cycle].values.get(name)
                if a != b:
                    first = " first" if cycle == record.cycle \
                        and name in record.nets else ""
                    out.append(f"<td class='div{first}'>{b:x}≠{a:x}</td>")
                else:
                    out.append(f"<td>{b:x}</td>")
            out.append("</tr>")
        out.append("</table>")

        # FSM timeline -------------------------------------------------
        out.append("<h2>FSM state timeline</h2>")
        out.append("<table><tr><th>cycle</th>")
        for cycle in cycles:
            mark = " class='first'" if cycle == record.cycle else ""
            out.append(f"<th{mark}>{cycle}</th>")
        out.append("</tr>")
        for label, table in (("reference", ref_at), ("subject", sub_at)):
            out.append(f"<tr><td class='sig'>{label}</td>")
            for cycle in cycles:
                a = ref_at[cycle].state
                b = table[cycle].state
                cls = " class='div'" if a != sub_at[cycle].state \
                    and label == "subject" else ""
                out.append(f"<td{cls}>{_esc(table[cycle].state)}</td>")
            out.append("</tr>")
        out.append("</table>")
    else:
        out.append("<p class='mut'>no waveform window captured "
                   "(memory-level divergence)</p>")
    out.append(f"<p class='mut'>checkpoints {record.checkpoints} · "
               f"stride {record.stride} · compared "
               f"{record.compared_cycles} cycles · generated by "
               f"repro triage</p>")
    out.append("</body></html>")
    return "".join(out)


# ----------------------------------------------------------------------
# Ledger attachment
# ----------------------------------------------------------------------
def attach_to_ledger(ledger, result: TriageResult, *,
                     wall_seconds: float = 0.0,
                     argv: Optional[Sequence[str]] = None,
                     paths: Optional[Mapping[str, Path]] = None):
    """Record *result* as a ``triage`` run row; returns the run id.

    *ledger* may be a :class:`repro.obs.ledger.Ledger` or a path (or
    None, in which case nothing is recorded).
    """
    if ledger is None:
        return None
    from .ledger import Ledger
    if not isinstance(ledger, Ledger):
        ledger = Ledger(ledger)
    extra = result.record.to_dict()
    if paths:
        extra["artifacts"] = {key: str(path)
                              for key, path in paths.items()}
    return ledger.record_triage(extra, wall_seconds=wall_seconds,
                                argv=list(argv) if argv else None)
