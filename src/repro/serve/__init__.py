"""Verification as a service: the ``repro serve`` daemon.

Long-lived asyncio parent + forked worker pool answering
compile+simulate+verify jobs over an NDJSON Unix socket (plus an
optional HTTP shim), with request dedup/coalescing keyed by the
artifact-cache content hash, structure-sharded work stealing, and
adaptive batching through the lockstep kernel.  See
:doc:`docs/serving.md` for the protocol and policies.
"""

from .client import ServeClient, wait_for_socket
from .jobs import JobError, JobSpec, ResolvedJob, resolve_job
from .scheduler import ServeScheduler, Submission
from .server import ServeDaemon
from .workers import execute_jobs, worker_main

__all__ = [
    "JobError", "JobSpec", "ResolvedJob", "resolve_job",
    "ServeScheduler", "Submission",
    "ServeDaemon",
    "ServeClient", "wait_for_socket",
    "worker_main", "execute_jobs",
]
