"""One-process-per-job baseline: the cost model ``repro serve`` beats.

``python -m repro.serve.oneshot '<job json>'`` boots a fresh
interpreter, imports the whole toolchain, compiles, simulates,
verifies, prints the result payload and exits — exactly what a naive
"shell out per verification" integration pays for every job.  The
serve bench spawns this per job to measure the baseline its warm
daemon is compared against; both paths execute the identical
:func:`repro.core.testsuite.run_case`, so the speedup is all
amortization (interpreter boot, imports, codegen cache warmth), not a
different code path.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional

from ..core.cache import result_to_payload
from ..core.testsuite import CaseResult, run_case
from .jobs import JobError, JobSpec, resolve_job


def run_oneshot(job: dict) -> dict:
    """Execute one job spec dict; returns the result payload."""
    try:
        spec = JobSpec.from_dict(job)
        resolved = resolve_job(spec)
    except JobError as exc:
        name = job.get("case", "?") if isinstance(job, dict) else "?"
        return result_to_payload(
            CaseResult(str(name), None, None, 0.0, error=str(exc)))
    result = run_case(resolved.case, seed=spec.seed,
                      fsm_mode=spec.fsm_mode, backend=spec.backend)
    return result_to_payload(result)


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    raw = argv[0] if argv else sys.stdin.read()
    try:
        job = json.loads(raw)
    except ValueError as exc:
        print(json.dumps({"error": f"bad job JSON: {exc}"}))
        return 2
    payload = run_oneshot(job)
    print(json.dumps(payload, sort_keys=True))
    failed = payload.get("error") is not None \
        or payload.get("verification") is None \
        or any(check["mismatches"]
               for check in payload["verification"]["checks"])
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
