"""Blocking client for the serve daemon's NDJSON socket protocol.

Used by the CLI, the CI smoke harness and the load-generating bench.
One client is one connection; results stream back in completion order,
so callers submit a batch of ids and then collect that many ``result``
events.  Not thread-safe — one client per thread.
"""

from __future__ import annotations

import json
import socket
import time
from collections import deque
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

__all__ = ["ServeClient", "wait_for_socket"]


def wait_for_socket(path: Union[str, Path], *,
                    timeout: float = 30.0) -> None:
    """Block until a daemon accepts connections at *path* (it creates
    the socket file only once it is ready to serve)."""
    deadline = time.monotonic() + timeout
    path = str(path)
    while True:
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as probe:
                probe.settimeout(1.0)
                probe.connect(path)
                return
        except OSError:
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"no serve daemon at {path} after {timeout:.0f}s")
            time.sleep(0.05)


class ServeClient:
    """One NDJSON connection to a running daemon."""

    def __init__(self, socket_path: Union[str, Path],
                 timeout: float = 300.0) -> None:
        self.socket_path = str(socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(self.socket_path)
        self._stream = self._sock.makefile("rwb")
        self._next_id = 0
        #: result events read while waiting for a control reply
        self._pending: deque = deque()

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._stream.close()
        finally:
            self._sock.close()

    # -- wire -----------------------------------------------------------
    def _send(self, obj: dict) -> None:
        self._stream.write(json.dumps(obj).encode("utf-8") + b"\n")
        self._stream.flush()

    def _read_event(self) -> dict:
        line = self._stream.readline()
        if not line:
            raise ConnectionError("serve daemon closed the connection")
        return json.loads(line)

    def _read_until(self, event: str) -> dict:
        """Next event of the given kind; buffers result events that
        arrive first (results stream in completion order and may
        interleave with control replies)."""
        while True:
            received = self._read_event()
            if received.get("event") == event:
                return received
            if received.get("event") == "result":
                self._pending.append(received)
            elif received.get("event") == "error":
                raise RuntimeError(f"serve error: {received.get('error')}")

    # -- operations -----------------------------------------------------
    def submit(self, job: dict, request_id=None):
        """Fire one job; returns its request id (auto-assigned ints
        when not given).  The verdict arrives via :meth:`results`."""
        if request_id is None:
            request_id = self._next_id
            self._next_id += 1
        self._send({"op": "submit", "id": request_id, "job": job})
        return request_id

    def results(self, count: int) -> Iterator[dict]:
        """Yield *count* result events as they complete (any order)."""
        for _ in range(count):
            if self._pending:
                yield self._pending.popleft()
                continue
            yield self._read_until("result")

    def collect(self, count: int) -> Dict[object, dict]:
        """Gather *count* result events keyed by request id."""
        return {event["id"]: event for event in self.results(count)}

    def run_jobs(self, jobs: List[dict]) -> List[dict]:
        """Submit every job, wait for every verdict, return events in
        submit order."""
        ids = [self.submit(job) for job in jobs]
        by_id = self.collect(len(ids))
        return [by_id[request_id] for request_id in ids]

    def ping(self) -> bool:
        self._send({"op": "ping"})
        return self._read_until("pong").get("event") == "pong"

    def status(self) -> dict:
        self._send({"op": "status"})
        return self._read_until("status")["stats"]

    def shutdown(self) -> dict:
        """Ask the daemon to drain and exit; returns its final stats
        snapshot (taken at acknowledgement time)."""
        self._send({"op": "shutdown"})
        return self._read_until("shutdown")["stats"]
