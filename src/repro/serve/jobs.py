"""Job model for the verification service.

A *job* is one compile+simulate+verify request against a registered
benchmark app: the case name, its sizing options, the stimulus seed and
the execution options.  Everything else — the dedup key, the batch
group, the shard — is derived, never sent, so a client cannot lie about
identity: two requests that hash alike *are* alike by construction.

Three derived identities drive the scheduler:

* **job key** — :func:`repro.core.cache.case_key` over the resolved
  case.  Identical to the artifact-cache digest, so "dedup against the
  artifact cache" is literal: a job key is a cache filename.
* **group key** — :func:`repro.core.cache.structure_key` plus the
  execution options minus the seed.  Jobs sharing a group compile to
  the same design and differ only in stimulus, which is exactly the
  precondition for one batched lockstep dispatch.
* **shard** — ``int(group_key, 16) % n_workers``: same-structure jobs
  land on the same worker, whose kernel cache is already warm for them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Mapping

from ..apps.registry import CASE_BUILDERS, suite_case
from ..core.cache import case_key, structure_key
from ..core.testsuite import SuiteCase
from ..sim.backends import SIMULATOR_BACKENDS

__all__ = ["JobError", "JobSpec", "ResolvedJob", "resolve_job"]

_FSM_MODES = ("generated", "interpreted")

#: backends in the compiled-kernel family; only these are safe to fold
#: into a batched dispatch (the batched kernel *is* this family, so the
#: verdict is unchanged — an ``event``/``oblivious`` job must run the
#: kernel it asked for)
_BATCHABLE_BACKENDS = ("compiled", "traced", "batched")


class JobError(ValueError):
    """A request that cannot become a job (unknown case, bad field)."""


@dataclass(frozen=True)
class JobSpec:
    """One verification request, exactly as it crosses the wire."""

    case: str
    size: Mapping[str, int] = field(default_factory=dict)
    seed: int = 0
    backend: str = "traced"
    fsm_mode: str = "generated"

    @classmethod
    def from_dict(cls, data: object) -> "JobSpec":
        """Validate an untrusted wire dict into a spec.

        Raises :class:`JobError` with a client-facing message on any
        malformed field; never raises anything else.
        """
        if not isinstance(data, dict):
            raise JobError(f"job must be an object, got {type(data).__name__}")
        # "trace" is telemetry, not identity: a span context dict that
        # rides the wire next to the job (client -> daemon -> worker)
        # but never reaches the spec, so two requests differing only in
        # tracing still dedup/coalesce/batch identically
        unknown = set(data) - {"case", "size", "seed", "backend",
                               "fsm_mode", "trace"}
        if unknown:
            raise JobError(f"unknown job field(s): {sorted(unknown)}")
        trace = data.get("trace")
        if trace is not None and not isinstance(trace, dict):
            raise JobError(f"'trace' must be a span context object, "
                           f"got {type(trace).__name__}")
        case = data.get("case")
        if not isinstance(case, str) or not case:
            raise JobError("job needs a 'case' name (string)")
        size = data.get("size", {})
        if not isinstance(size, dict):
            raise JobError("'size' must be an object of integer options")
        for key, value in size.items():
            if not isinstance(key, str) or isinstance(value, bool) \
                    or not isinstance(value, int):
                raise JobError(
                    f"'size' entries must map names to integers, "
                    f"got {key!r}={value!r}")
        seed = data.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise JobError(f"'seed' must be an integer, got {seed!r}")
        backend = data.get("backend", "traced")
        if backend not in SIMULATOR_BACKENDS:
            raise JobError(
                f"unknown backend {backend!r} "
                f"(known: {sorted(SIMULATOR_BACKENDS)})")
        fsm_mode = data.get("fsm_mode", "generated")
        if fsm_mode not in _FSM_MODES:
            raise JobError(
                f"unknown fsm_mode {fsm_mode!r} (known: {_FSM_MODES})")
        return cls(case=case, size=dict(size), seed=seed,
                   backend=backend, fsm_mode=fsm_mode)

    def to_dict(self) -> dict:
        return {"case": self.case, "size": dict(self.size),
                "seed": self.seed, "backend": self.backend,
                "fsm_mode": self.fsm_mode}


@dataclass
class ResolvedJob:
    """A spec bound to its built case and derived identities."""

    spec: JobSpec
    case: SuiteCase
    #: the content-hash artifact digest (dedup/coalesce/cache key)
    key: str
    #: structure + options minus seed (batch grouping / shard key)
    group: str
    #: may this job be folded into a batched lockstep dispatch?
    batchable: bool

    def shard(self, n_workers: int) -> int:
        return int(self.group[:16], 16) % max(n_workers, 1)


def resolve_job(spec: JobSpec) -> ResolvedJob:
    """Build the case and derive the job's identities.

    Raises :class:`JobError` when the case name is unknown or the
    sizing options don't fit its builder's signature — before anything
    is queued, so a bad request never reaches a worker.
    """
    if spec.case not in CASE_BUILDERS:
        raise JobError(
            f"unknown case {spec.case!r} (known: {sorted(CASE_BUILDERS)})")
    try:
        case = suite_case(spec.case, **dict(spec.size))
    except TypeError as exc:
        raise JobError(
            f"bad size options for {spec.case!r}: {exc}") from None
    key = case_key(case, seed=spec.seed, fsm_mode=spec.fsm_mode,
                   backend=spec.backend)
    structure = structure_key(case, fsm_mode=spec.fsm_mode)
    group_blob = f"{structure}:{spec.backend}:{spec.fsm_mode}"
    group = hashlib.sha256(group_blob.encode("utf-8")).hexdigest()
    batchable = (case.inputs is not None
                 and spec.backend in _BATCHABLE_BACKENDS)
    return ResolvedJob(spec=spec, case=case, key=key, group=group,
                      batchable=batchable)
