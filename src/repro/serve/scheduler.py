"""The serve scheduler: dedup, coalescing, sharding, stealing, batching.

The parent process owns all scheduling state; workers are pure
executors.  A submitted job flows through four gates, cheapest first:

1. **memo** — a passing payload already produced this session is
   answered immediately, no worker touched.
2. **artifact cache** — the on-disk :class:`ArtifactCache` (shared with
   ``repro suite --cache``) is probed by the identical content-hash
   key; a hit is promoted into the memo and answered immediately.
3. **coalesce** — a job whose key is already in flight (queued or
   executing) attaches its future to the existing execution instead of
   queueing a duplicate; one execution fans out to every waiter.
4. **queue** — the job lands on the deque of the worker its *group*
   key shards to, so same-structure jobs hit the same warm kernel
   cache.

Idle workers first drain their own deque; an empty deque *steals* from
the tail of the longest other deque (the head is the victim's warm,
soon-to-run work; the tail is the coldest).  When a dispatch is taken,
the scheduler gathers up to ``batch_max - 1`` more same-group jobs from
the same deque into one batched lockstep dispatch — unless the group
has previously refused the batch fast path, which the scheduler learns
from the worker's ``batch_ok`` flag and never retries (adaptive
batching).

Results are finalized in the parent: futures resolve, passing payloads
enter the memo, singly-executed passes are written to the artifact
cache (batched lanes are memo-only — their payloads carry batch-kernel
timing, which must not masquerade on disk as a plain run of the
requested backend), and one ledger row per job is accumulated for
:meth:`repro.obs.Ledger.record_serve` at shutdown.

Every job is telemetered end to end.  When a trace recorder is
installed, submit opens a detached ``serve.job`` span (adopting the
client's ``trace`` context if the request carried one), the gate
verdict and the queue wait get child spans, and the job's span context
rides the wire to the worker, whose ``serve.execute`` span lands in
the same trace — one Perfetto timeline per job across both processes.
Independently of tracing, the scheduler feeds a fixed set of
:class:`~repro.obs.metrics.Histogram` instruments (per-gate latency,
queue wait, execute time, end-to-end job latency, batch size) whose
snapshots ride :meth:`stats` and whose Prometheus rendering is
:meth:`prometheus`.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Union

from ..core.cache import ArtifactCache, result_to_payload
from ..core.testsuite import CaseResult
from ..obs.metrics import Histogram, render_prometheus_histogram
from ..obs.trace import start_span
from .jobs import JobError, JobSpec, ResolvedJob, resolve_job
from .workers import worker_main

__all__ = ["ServeScheduler", "Submission"]

#: admission gates, cheapest first — the order of the latency series in
#: the ``repro_serve_gate_seconds`` histogram family
_GATES = ("memo", "artifact", "coalesce", "queue")

#: stats() keys exported as Prometheus gauges rather than counters
_GAUGE_KEYS = frozenset({
    "workers", "batch_max", "inflight", "memo_entries",
    "unbatchable_groups", "wall_seconds", "coalesce_rate",
    "cache_served_rate",
})


def _make_histograms() -> Dict[str, Histogram]:
    names = [f"gate_{gate}_seconds" for gate in _GATES]
    names += ["queue_wait_seconds", "execute_seconds",
              "job_latency_seconds", "batch_size"]
    return {name: Histogram(name) for name in names}

#: memo entries kept before oldest-first eviction; passing payloads are
#: a few KB each, so this bounds parent memory at a few tens of MB
_MEMO_LIMIT = 4096


class Submission:
    """Handle returned by :meth:`ServeScheduler.submit`.

    ``served`` says how the job was answered: ``queued`` (a worker will
    execute it), ``coalesced`` (rides an in-flight execution),
    ``memo`` / ``artifact`` (answered from cache), or ``invalid`` (the
    request never became a job).  ``future`` resolves to the result
    payload dict (:func:`repro.core.cache.result_to_payload` layout).
    """

    __slots__ = ("key", "served", "future")

    def __init__(self, key: Optional[str], served: str,
                 future: "asyncio.Future") -> None:
        self.key = key
        self.served = served
        self.future = future


class _Queued:
    """One scheduled execution; carries every waiter's future.

    Also carries the telemetry of the execution: the owning job's
    detached span and submit time, the queue-wait span opened at
    enqueue, and the (span, submit-time) of every coalesced waiter —
    all closed at finalize so one reply resolves every timeline.
    """

    __slots__ = ("resolved", "futures", "span", "submitted_at",
                 "queue_span", "enqueued_at", "extra_spans")

    def __init__(self, resolved: ResolvedJob,
                 future: "asyncio.Future") -> None:
        self.resolved = resolved
        self.futures = [future]
        self.span = None
        self.submitted_at = 0.0
        self.queue_span = None
        self.enqueued_at = 0.0
        self.extra_spans: List[tuple] = []

    @property
    def spec(self) -> JobSpec:
        return self.resolved.spec

    @property
    def key(self) -> str:
        return self.resolved.key

    @property
    def group(self) -> str:
        return self.resolved.group


class _Worker:
    __slots__ = ("index", "process", "conn", "dispatch")

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        #: jobs currently executing on this worker (None = idle)
        self.dispatch: Optional[List[_Queued]] = None


class ServeScheduler:
    """Owns the worker pool and every scheduling decision."""

    def __init__(self, *, jobs: int = 1, batch_max: int = 8,
                 cache: Optional[Union[ArtifactCache, str]] = None,
                 max_respawns: int = 3) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "repro serve needs the 'fork' start method (workers "
                "inherit the case registry and kernel caches)")
        self.jobs = jobs
        self.batch_max = batch_max
        if isinstance(cache, str):
            cache = ArtifactCache(cache)
        self.cache = cache
        self.max_respawns = max_respawns
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._workers: List[_Worker] = []
        self._deques: List[Deque[_Queued]] = [deque()
                                              for _ in range(jobs)]
        self._inflight: Dict[str, _Queued] = {}
        self._memo: Dict[str, dict] = {}
        self._unbatchable: set = set()
        self._dispatch_seq = 0
        self._started: Optional[float] = None
        self._respawns = 0
        self._kick_scheduled = False
        self._closed = False
        self.ledger_rows: List[dict] = []
        self.histograms: Dict[str, Histogram] = _make_histograms()
        self.counters = {
            "submitted": 0, "executed": 0, "completed": 0,
            "coalesced": 0, "memo_hits": 0, "artifact_hits": 0,
            "invalid": 0, "failed": 0,
            "dispatches": 0, "batches": 0, "batched_jobs": 0,
            "steals": 0, "stolen_jobs": 0, "respawns": 0,
        }

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._started = time.perf_counter()
        for index in range(self.jobs):
            self._spawn(index)

    def _spawn(self, index: int) -> None:
        context = multiprocessing.get_context("fork")
        parent_conn, child_conn = context.Pipe()
        process = context.Process(target=worker_main, args=(child_conn,),
                                  daemon=True,
                                  name=f"repro-serve-w{index}")
        process.start()
        child_conn.close()
        worker = _Worker(index, process, parent_conn)
        if index < len(self._workers):
            self._workers[index] = worker
        else:
            self._workers.append(worker)
        self._loop.add_reader(parent_conn.fileno(),
                              self._on_readable, worker)

    async def shutdown(self) -> None:
        """Drain every in-flight job, then stop the workers."""
        while self._inflight:
            futures = [future for queued in self._inflight.values()
                       for future in queued.futures]
            await asyncio.gather(*futures, return_exceptions=True)
        self._closed = True
        for worker in self._workers:
            if worker.process is None:
                continue
            try:
                self._loop.remove_reader(worker.conn.fileno())
            except (ValueError, OSError):
                pass
            try:
                worker.conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.process.join(timeout=10)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)
            worker.process = None

    # -- submission -----------------------------------------------------
    def submit(self, spec: Union[JobSpec, dict]) -> Submission:
        """Admit one job; returns immediately with a Submission whose
        future resolves to the result payload.  Never raises on bad
        requests — they resolve to an error payload with
        ``served='invalid'``.

        A dict spec may carry a ``trace`` context dict (as produced by
        :attr:`repro.obs.trace.Span.context`); the job's span becomes a
        child of the client's span, so the client's own trace file and
        the daemon's stitch into one timeline."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self.counters["submitted"] += 1
        parent = None
        if isinstance(spec, dict) and isinstance(spec.get("trace"), dict):
            parent = spec["trace"]
        job_span = start_span("serve.job", category="serve",
                              parent=parent)
        submitted_at = time.perf_counter()
        try:
            if isinstance(spec, dict):
                spec = JobSpec.from_dict(spec)
            resolved = resolve_job(spec)
        except JobError as exc:
            self.counters["invalid"] += 1
            name = spec.get("case", "?") if isinstance(spec, dict) \
                else spec.case
            payload = result_to_payload(
                CaseResult(str(name), None, None, 0.0, error=str(exc)))
            future.set_result(payload)
            job_span.set("case", str(name)).set("served", "invalid")
            job_span.finish()
            # no ledger row: a rejected request never became a job, and
            # a client typo must not mark the serve run as failed (the
            # ``invalid`` counter in the run's extra carries the tally)
            return Submission(None, "invalid", future)

        job_span.set("case", spec.case).set("key", resolved.key[:16])
        gate_span = start_span("serve.gates", category="serve",
                               parent=job_span.context, case=spec.case)
        served, queued = self._admit(resolved, future, job_span,
                                     submitted_at)
        gate_span.set("verdict", served)
        gate_span.finish()
        if served in ("memo", "artifact"):
            # answered on the spot: the job's whole life was the gates
            self.histograms["job_latency_seconds"].observe(
                time.perf_counter() - submitted_at)
            job_span.set("served", served)
            job_span.finish()
        # coalesced/queued spans close at _finalize, with the execution
        return Submission(resolved.key, served, future)

    def _admit(self, resolved: ResolvedJob, future: "asyncio.Future",
               job_span, submitted_at: float) -> tuple:
        """Run the four admission gates, cheapest first, timing each.

        Returns ``(served, queued-or-None)``; resolves *future* itself
        when a gate answers without execution.
        """
        key = resolved.key
        hist = self.histograms
        t0 = time.perf_counter()
        payload = self._memo.get(key)
        hist["gate_memo_seconds"].observe(time.perf_counter() - t0)
        if payload is not None:
            self.counters["memo_hits"] += 1
            future.set_result(payload)
            self._record(payload, cached=True, batch_size=0)
            return "memo", None
        if self.cache is not None:
            t0 = time.perf_counter()
            hit = self.cache.load(key)
            hist["gate_artifact_seconds"].observe(
                time.perf_counter() - t0)
            if hit is not None:
                payload = result_to_payload(hit)
                self._remember(key, payload)
                self.counters["artifact_hits"] += 1
                future.set_result(payload)
                self._record(payload, cached=True, batch_size=0)
                return "artifact", None
        t0 = time.perf_counter()
        queued = self._inflight.get(key)
        hist["gate_coalesce_seconds"].observe(time.perf_counter() - t0)
        if queued is not None:
            self.counters["coalesced"] += 1
            queued.futures.append(future)
            queued.extra_spans.append((job_span, submitted_at))
            return "coalesced", queued

        t0 = time.perf_counter()
        queued = _Queued(resolved, future)
        queued.span = job_span
        queued.submitted_at = submitted_at
        queued.queue_span = start_span("serve.queue", category="serve",
                                       parent=job_span.context,
                                       case=resolved.spec.case)
        queued.enqueued_at = time.perf_counter()
        self._inflight[key] = queued
        shard = resolved.shard(self.jobs)
        self._deques[shard].append(queued)
        self._kick()
        hist["gate_queue_seconds"].observe(time.perf_counter() - t0)
        return "queued", queued

    def _kick(self) -> None:
        """Schedule one dispatch pass per event-loop tick, so a burst
        of submits queues fully before work is handed out — that is
        what gives the batcher same-group jobs to gather."""
        if self._kick_scheduled or self._closed:
            return
        self._kick_scheduled = True
        self._loop.call_soon(self._dispatch_pass)

    def _dispatch_pass(self) -> None:
        self._kick_scheduled = False
        self._dispatch_all()

    # -- dispatch / stealing / batching ---------------------------------
    def _dispatch_all(self) -> None:
        for worker in self._workers:
            if worker.process is None or worker.dispatch is not None:
                continue
            batch = self._take_work(worker.index)
            if batch:
                self._send(worker, batch)

    def _take_work(self, index: int) -> List[_Queued]:
        source = self._deques[index]
        stolen = False
        if source:
            first = source.popleft()
        else:
            victim = max(
                (i for i in range(self.jobs) if i != index),
                key=lambda i: len(self._deques[i]), default=None)
            if victim is None or not self._deques[victim]:
                return []
            source = self._deques[victim]
            first = source.pop()
            stolen = True
            self.counters["steals"] += 1
            self.counters["stolen_jobs"] += 1
        batch = [first]
        if (self.batch_max > 1 and source
                and first.resolved.batchable
                and first.group not in self._unbatchable):
            matches = [queued for queued in source
                       if queued.group == first.group]
            matches = matches[:self.batch_max - 1]
            if matches:
                taken = {id(queued) for queued in matches}
                keep = [queued for queued in source
                        if id(queued) not in taken]
                source.clear()
                source.extend(keep)
                batch.extend(matches)
                if stolen:
                    self.counters["stolen_jobs"] += len(matches)
        return batch

    def _send(self, worker: _Worker, batch: List[_Queued]) -> None:
        worker.dispatch = batch
        self._dispatch_seq += 1
        now = time.perf_counter()
        self.histograms["batch_size"].observe(len(batch))
        specs = []
        for queued in batch:
            self.histograms["queue_wait_seconds"].observe(
                now - queued.enqueued_at)
            if queued.queue_span is not None:
                queued.queue_span.set("worker", worker.index)
                queued.queue_span.finish()
                queued.queue_span = None
            spec_dict = queued.spec.to_dict()
            if queued.span is not None \
                    and queued.span.span_id is not None:
                # the job span's context rides the wire; the worker's
                # execute span adopts it on the far side
                spec_dict["trace"] = queued.span.context
            specs.append(spec_dict)
        try:
            worker.conn.send(("run", self._dispatch_seq, specs))
        except (BrokenPipeError, OSError):
            self._on_worker_death(worker)
            return
        self.counters["dispatches"] += 1
        self.counters["executed"] += len(batch)
        if len(batch) > 1:
            self.counters["batches"] += 1
            self.counters["batched_jobs"] += len(batch)

    # -- results --------------------------------------------------------
    def _on_readable(self, worker: _Worker) -> None:
        try:
            while worker.conn.poll():
                message = worker.conn.recv()
                self._handle_message(worker, message)
        except (EOFError, OSError):
            self._on_worker_death(worker)
            return
        self._dispatch_all()

    def _handle_message(self, worker: _Worker, message) -> None:
        if not isinstance(message, tuple) or not message \
                or message[0] != "done":
            return
        _, _dispatch_id, entries = message
        batch = worker.dispatch or []
        worker.dispatch = None
        for queued, entry in zip(batch, entries):
            self._finalize(queued, entry)

    def _finalize(self, queued: _Queued, entry: dict) -> None:
        payload = entry["payload"]
        self._inflight.pop(queued.key, None)
        if not entry.get("batch_ok", True):
            self._unbatchable.add(queued.group)
        passed = _payload_passed(payload)
        if passed:
            self._remember(queued.key, payload)
            if self.cache is not None and entry.get("batch_size", 1) == 1:
                from ..core.cache import result_from_payload
                self.cache.store(queued.key,
                                 result_from_payload(payload))
        else:
            self.counters["failed"] += 1
        self.counters["completed"] += 1
        self._record(payload, cached=False,
                     batch_size=entry.get("batch_size", 1))
        for extra in queued.futures[1:]:
            self._record(payload, cached=True, batch_size=0)
        execute_seconds = entry.get("execute_seconds")
        if execute_seconds is not None:
            self.histograms["execute_seconds"].observe(execute_seconds)
        now = time.perf_counter()
        if queued.queue_span is not None:
            # never dispatched (worker died, budget exhausted): the
            # queue wait still ends here
            queued.queue_span.finish()
            queued.queue_span = None
        if queued.span is not None:
            self.histograms["job_latency_seconds"].observe(
                now - queued.submitted_at)
            queued.span.set("served", "queued").set("passed", passed)
            queued.span.finish()
            queued.span = None
        for job_span, submitted_at in queued.extra_spans:
            self.histograms["job_latency_seconds"].observe(
                now - submitted_at)
            job_span.set("served", "coalesced").set("passed", passed)
            job_span.finish()
        queued.extra_spans = []
        for future in queued.futures:
            if not future.done():
                future.set_result(payload)

    def _on_worker_death(self, worker: _Worker) -> None:
        if worker.process is None:
            return
        try:
            self._loop.remove_reader(worker.conn.fileno())
        except (ValueError, OSError):
            pass
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=5)
        worker.process = None
        orphans = worker.dispatch or []
        worker.dispatch = None
        self._respawns += 1
        self.counters["respawns"] += 1
        if self._closed or self._respawns > self.max_respawns * self.jobs:
            # give up: fail the orphans instead of looping a crash
            for queued in orphans:
                payload = result_to_payload(CaseResult(
                    queued.spec.case, None, None, 0.0,
                    error="serve worker died and respawn budget is "
                          "exhausted"))
                self._finalize(queued, {"payload": payload,
                                        "batch_size": 1})
            return
        # put the interrupted jobs back at the front of their shard's
        # deque (they were next in line) and bring up a replacement
        for queued in reversed(orphans):
            self._deques[worker.index].appendleft(queued)
        self._spawn(worker.index)
        self._kick()

    # -- memo / accounting ----------------------------------------------
    def _remember(self, key: str, payload: dict) -> None:
        if key not in self._memo and len(self._memo) >= _MEMO_LIMIT:
            self._memo.pop(next(iter(self._memo)))
        self._memo[key] = payload

    def _record(self, payload: dict, *, cached: bool,
                batch_size: int) -> None:
        v = payload.get("verification") or {}
        self.ledger_rows.append({
            "case": payload.get("case", "?"),
            "passed": _payload_passed(payload),
            "cached": cached,
            "error": payload.get("error"),
            "backend": v.get("backend"),
            "cycles": v.get("cycles", 0),
            "evaluations": v.get("evaluations", 0),
            "simulation_seconds": v.get("simulation_seconds", 0.0),
            "golden_seconds": v.get("golden_seconds", 0.0),
            "compile_seconds": payload.get("compile_seconds", 0.0),
            "batch_size": batch_size,
        })

    def stats(self) -> dict:
        counters = dict(self.counters)
        submitted = counters["submitted"] or 1
        served_without_execution = (counters["coalesced"]
                                    + counters["memo_hits"]
                                    + counters["artifact_hits"])
        counters.update({
            "wall_seconds": (time.perf_counter() - self._started
                             if self._started is not None else 0.0),
            "workers": self.jobs,
            "batch_max": self.batch_max,
            "queue_depths": [len(dq) for dq in self._deques],
            "inflight": len(self._inflight),
            "memo_entries": len(self._memo),
            "unbatchable_groups": len(self._unbatchable),
            "coalesce_rate": counters["coalesced"] / submitted,
            "cache_served_rate": served_without_execution / submitted,
            "histograms": {name: hist.as_dict()
                           for name, hist in self.histograms.items()
                           if hist.count},
        })
        return counters

    def prometheus(self) -> str:
        """The scheduler's live state as Prometheus text exposition.

        Counters become ``repro_serve_<name>_total``, derived/config
        values become gauges, and every histogram renders as a full
        ``_bucket``/``_sum``/``_count`` family — the four gate
        histograms fold into one ``repro_serve_gate_seconds`` family
        labelled by gate.
        """
        stats = self.stats()
        lines: List[str] = []
        for name in sorted(stats):
            value = stats[name]
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                continue
            if name in _GAUGE_KEYS:
                lines.append(f"# TYPE repro_serve_{name} gauge")
                lines.append(f"repro_serve_{name} {value:.9g}")
            else:
                lines.append(f"# TYPE repro_serve_{name}_total counter")
                lines.append(f"repro_serve_{name}_total {value}")
        lines.extend(render_prometheus_histogram(
            "repro_serve_gate_seconds",
            [({"gate": gate}, self.histograms[f"gate_{gate}_seconds"])
             for gate in _GATES],
            "Admission gate latency by gate, seconds"))
        for name, help_text in (
                ("queue_wait_seconds",
                 "Time from enqueue to worker dispatch, seconds"),
                ("execute_seconds",
                 "Per-job worker execution wall time, seconds"),
                ("job_latency_seconds",
                 "End-to-end submit-to-reply latency, seconds"),
                ("batch_size", "Jobs per worker dispatch")):
            lines.extend(render_prometheus_histogram(
                f"repro_serve_{name}", [({}, self.histograms[name])],
                help_text))
        return "\n".join(lines) + "\n"


def _payload_passed(payload: dict) -> bool:
    """Verdict of a result payload without rebuilding the result."""
    if payload.get("error") is not None:
        return False
    v = payload.get("verification")
    if v is None:
        return False
    return all(not check["mismatches"] for check in v["checks"])
