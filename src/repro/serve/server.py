"""The ``repro serve`` daemon: verification as a long-lived service.

One asyncio process owns a :class:`~repro.serve.scheduler.ServeScheduler`
and exposes it two ways:

**NDJSON socket** (the primary protocol) — a Unix-domain stream socket
where every request and every reply is one JSON object per line:

* ``{"op": "submit", "id": <any>, "job": {...}}`` — admit a job; the
  verdict arrives later (in completion order, not submit order) as
  ``{"event": "result", "id": <echoed>, "served": ..., "result": ...}``
* ``{"op": "status"}`` → ``{"event": "status", "stats": {...}}``
* ``{"op": "ping"}`` → ``{"event": "pong"}``
* ``{"op": "shutdown"}`` → ``{"event": "shutdown", "stats": {...}}``,
  then the daemon drains in-flight work and exits.
* malformed input → ``{"event": "error", "error": ...}`` (the
  connection stays up; one bad line never kills a stream of good ones)

**HTTP shim** (optional, ``--http PORT``) — a minimal hand-rolled
HTTP/1.0 layer for curl-ability, serving ``GET /healthz``,
``GET /status``, ``GET /metrics`` (live Prometheus text exposition:
serve counters, gauges and the latency histogram families rendered by
:meth:`~repro.serve.scheduler.ServeScheduler.prometheus`) and
``POST /jobs`` (body ``{"jobs": [...]}``; the response blocks until
every submitted job resolves).

A submit op (or a job object) may carry a ``trace`` span context; the
scheduler threads it through the job's entire lifetime, so a tracing
client's timeline continues inside the daemon and its workers.

On shutdown the daemon harvests its ledger exactly as
:meth:`TestSuite.run <repro.core.testsuite.TestSuite.run>` does — one
``serve`` run row plus one row per job — in the parent process only,
after the worker pool has drained, so worker concurrency never reaches
SQLite.
"""

from __future__ import annotations

import asyncio
import json
import signal
from pathlib import Path
from typing import Optional, Union

from .scheduler import ServeScheduler, Submission

__all__ = ["ServeDaemon"]

#: max length of one NDJSON line / HTTP body (a job spec is < 1 KB;
#: this is headroom, not a promise)
_LIMIT = 1 << 20


class ServeDaemon:
    """Bind a scheduler to its sockets and run until told to stop."""

    def __init__(self, scheduler: ServeScheduler, *,
                 socket_path: Union[str, Path],
                 http_port: Optional[int] = None,
                 http_host: str = "127.0.0.1",
                 ledger_path: Optional[Union[str, Path]] = None) -> None:
        self.scheduler = scheduler
        self.socket_path = Path(socket_path)
        self.http_port = http_port
        self.http_host = http_host
        self.ledger_path = ledger_path
        self._stop = asyncio.Event()
        self._tasks: set = set()
        #: run id of the harvested ledger row (set after run() returns)
        self.ledger_run_id: Optional[int] = None
        #: actual HTTP port once bound (``--http 0`` asks the kernel)
        self.http_bound_port: Optional[int] = None

    # -- lifecycle ------------------------------------------------------
    def request_stop(self) -> None:
        self._stop.set()

    async def run(self, *, install_signal_handlers: bool = True) -> dict:
        """Serve until shutdown is requested; returns the final stats."""
        await self.scheduler.start()
        # bind HTTP before the Unix socket: readiness probes wait for
        # the socket path, so by the time it exists http_bound_port is
        # already published
        http_server = None
        if self.http_port is not None:
            http_server = await asyncio.start_server(
                self._handle_http, host=self.http_host,
                port=self.http_port, limit=_LIMIT)
            self.http_bound_port = \
                http_server.sockets[0].getsockname()[1]
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            self.socket_path.unlink()
        server = await asyncio.start_unix_server(
            self._handle_ndjson, path=str(self.socket_path), limit=_LIMIT)
        loop = asyncio.get_running_loop()
        installed = []
        if install_signal_handlers:
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, self._stop.set)
                    installed.append(signum)
                except (NotImplementedError, RuntimeError):
                    pass
        try:
            await self._stop.wait()
            await self.scheduler.shutdown()
            stats = self.scheduler.stats()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            server.close()
            await server.wait_closed()
            if http_server is not None:
                http_server.close()
                await http_server.wait_closed()
            for task in list(self._tasks):
                task.cancel()
            if self.socket_path.exists():
                self.socket_path.unlink()
        if self.ledger_path is not None:
            from ..obs.ledger import Ledger
            with Ledger(self.ledger_path) as ledger:
                self.ledger_run_id = ledger.record_serve(
                    stats, self.scheduler.ledger_rows)
        return stats

    def _track(self, coro) -> "asyncio.Task":
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    # -- NDJSON protocol ------------------------------------------------
    async def _handle_ndjson(self, reader, writer) -> None:
        lock = asyncio.Lock()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # oversized line or peer reset
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                await self._handle_op(line, writer, lock)
        except asyncio.CancelledError:
            pass  # daemon shut down with this connection still open
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _handle_op(self, line: bytes, writer, lock) -> None:
        try:
            request = json.loads(line)
        except ValueError as exc:
            await self._write(writer, lock,
                              {"event": "error",
                               "error": f"bad JSON: {exc}"})
            return
        op = request.get("op") if isinstance(request, dict) else None
        if op == "submit":
            job = request.get("job")
            if isinstance(job, dict) and "trace" not in job \
                    and isinstance(request.get("trace"), dict):
                job = dict(job, trace=request["trace"])
            submission = self.scheduler.submit(job)
            self._track(self._deliver(request.get("id"), submission,
                                      writer, lock))
        elif op == "status":
            await self._write(writer, lock,
                              {"event": "status",
                               "stats": self.scheduler.stats()})
        elif op == "ping":
            await self._write(writer, lock, {"event": "pong"})
        elif op == "shutdown":
            await self._write(writer, lock,
                              {"event": "shutdown",
                               "stats": self.scheduler.stats()})
            self._stop.set()
        else:
            await self._write(writer, lock,
                              {"event": "error",
                               "error": f"unknown op {op!r}"})

    async def _deliver(self, request_id, submission: Submission,
                       writer, lock) -> None:
        payload = await submission.future
        event = {"event": "result", "id": request_id,
                 "served": submission.served, "key": submission.key,
                 "result": payload}
        try:
            await self._write(writer, lock, event)
        except (ConnectionError, OSError):
            pass  # client went away; the result stays memoized

    async def _write(self, writer, lock, obj: dict) -> None:
        data = json.dumps(obj, sort_keys=True).encode("utf-8") + b"\n"
        async with lock:
            writer.write(data)
            await writer.drain()

    # -- HTTP shim ------------------------------------------------------
    async def _handle_http(self, reader, writer) -> None:
        try:
            response = await self._http_response(reader)
        except (ValueError, ConnectionError):
            response = (400, {"error": "malformed request"})
        status, body = response[0], response[1]
        content_type = response[2] if len(response) > 2 \
            else "application/json"
        if isinstance(body, str):
            blob = body.encode("utf-8")
        else:
            blob = json.dumps(body, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed"}
        head = (f"HTTP/1.0 {status} {reason.get(status, 'Error')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(blob)}\r\n"
                f"Connection: close\r\n\r\n").encode("ascii")
        try:
            writer.write(head + blob)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _http_response(self, reader) -> tuple:
        request_line = (await reader.readline()).decode("ascii",
                                                        "replace")
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("ascii", "replace") \
                                   .partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length"}
        if method == "GET" and path == "/healthz":
            return 200, {"ok": True}
        if method == "GET" and path == "/status":
            return 200, {"stats": self.scheduler.stats()}
        if method == "GET" and path == "/metrics":
            return 200, self.scheduler.prometheus(), \
                "text/plain; version=0.0.4; charset=utf-8"
        if path == "/jobs":
            if method != "POST":
                return 405, {"error": "POST /jobs"}
            if content_length <= 0 or content_length > _LIMIT:
                return 400, {"error": "body required (Content-Length)"}
            body = await reader.readexactly(content_length)
            try:
                parsed = json.loads(body)
            except ValueError as exc:
                return 400, {"error": f"bad JSON body: {exc}"}
            if isinstance(parsed, dict) and "jobs" in parsed:
                jobs = parsed["jobs"]
            elif isinstance(parsed, dict) and "job" in parsed:
                jobs = [parsed["job"]]
            else:
                return 400, {"error": "body must be {'jobs': [...]} "
                                      "or {'job': {...}}"}
            if not isinstance(jobs, list):
                return 400, {"error": "'jobs' must be a list"}
            submissions = [self.scheduler.submit(job) for job in jobs]
            payloads = await asyncio.gather(
                *(s.future for s in submissions))
            return 200, {"results": [
                {"served": s.served, "key": s.key, "result": p}
                for s, p in zip(submissions, payloads)],
                "stats": self.scheduler.stats()}
        return 404, {"error": f"no route {method} {path}"}
