"""Worker-process side of the verification service.

Each worker is a long-lived ``fork`` child holding warm caches — the
kernel codegen cache (:mod:`repro.core.kernelcache`) and every imported
module — so repeat structures skip codegen entirely.  The parent talks
to it over a :func:`multiprocessing.Pipe`:

* parent → worker: ``("run", dispatch_id, [spec_dict, ...])``
* worker → parent: ``("done", dispatch_id, [entry, ...])``
* parent → worker: ``("exit",)`` (or just closing the pipe)

Spec dicts may carry a ``trace`` span context injected by the
scheduler; the worker adopts it around execution, so its
``serve.execute`` spans (written through the fork-inherited O_APPEND
recorder) nest under the parent's job span in the stitched timeline.
Every result entry reports its ``execute_seconds`` wall share, which
the parent feeds into the serve latency histograms.

A dispatch of one job runs :func:`repro.core.testsuite.run_case` — the
same unit of work the suite runner schedules.  A dispatch of several
jobs is a *batched* dispatch: the scheduler guarantees they share a
group key (same structure, backend, fsm_mode; different seeds), so the
worker compiles once and advances every stimulus set in lockstep
through :func:`repro.core.verification.verify_design_batch`.  Any
failure of the batch path degrades to per-job single execution with
identical verdict semantics; the worker itself never raises — every
outcome, including harness bugs, is folded into an error payload so the
parent always gets one entry per job.
"""

from __future__ import annotations

import dataclasses
import signal
import time
import traceback
from typing import List, Optional

from ..core.cache import result_to_payload
from ..core.report import collect_metrics
from ..core.testsuite import CaseResult, run_case
from ..core.verification import verify_design_batch
from ..obs.trace import start_span
from .jobs import JobError, JobSpec, resolve_job

__all__ = ["worker_main", "execute_jobs"]


def _pop_contexts(spec_dicts: List[dict]) -> List[Optional[dict]]:
    """Strip the scheduler-injected trace contexts off the specs."""
    contexts: List[Optional[dict]] = []
    for spec_dict in spec_dicts:
        context = spec_dict.pop("trace", None) \
            if isinstance(spec_dict, dict) else None
        contexts.append(context if isinstance(context, dict) else None)
    return contexts


def _error_entry(name: str, error: str,
                 trace: Optional[str] = None) -> dict:
    result = CaseResult(name, None, None, 0.0, error=error,
                        traceback=trace)
    return {"payload": result_to_payload(result),
            "batch_size": 1, "batch_ok": True}


def _execute_single(spec_dict: dict) -> dict:
    try:
        spec = JobSpec.from_dict(spec_dict)
        resolved = resolve_job(spec)
    except JobError as exc:
        name = spec_dict.get("case", "?") \
            if isinstance(spec_dict, dict) else "?"
        return _error_entry(str(name), str(exc))
    result = run_case(resolved.case, seed=spec.seed,
                      fsm_mode=spec.fsm_mode, backend=spec.backend)
    return {"payload": result_to_payload(result),
            "batch_size": 1, "batch_ok": True}


def _execute_batch(spec_dicts: List[dict]) -> List[dict]:
    """One compile, N lockstep lanes, one entry per job (in order)."""
    specs = [JobSpec.from_dict(d) for d in spec_dicts]
    resolved = [resolve_job(s) for s in specs]
    case = resolved[0].case
    started = time.perf_counter()
    design = case.compile()
    compile_share = (time.perf_counter() - started) / len(specs)
    inputs_list = [r.case.inputs(r.spec.seed) for r in resolved]
    batch = verify_design_batch(design, case.func, inputs_list,
                                fsm_mode=specs[0].fsm_mode,
                                max_cycles=case.max_cycles)
    base = collect_metrics(design, simulation_seconds=0.0, cycles=0,
                           backend=batch.backend)
    entries = []
    for lane in batch.lanes:
        metrics = dataclasses.replace(
            base, simulation_seconds=lane.simulation_seconds,
            cycles=lane.cycles)
        result = CaseResult(case.name, lane, metrics, compile_share)
        entries.append({"payload": result_to_payload(result),
                        "batch_size": len(specs),
                        "batch_ok": batch.batched})
    return entries


def execute_jobs(spec_dicts: List[dict]) -> List[dict]:
    """Run a dispatch; always returns one entry per job, never raises.

    Each returned entry carries ``execute_seconds`` (this job's share
    of the dispatch wall time), and when trace contexts rode in, one
    ``serve.execute`` span per job is recorded in this worker's pid.
    """
    contexts = _pop_contexts(spec_dicts)
    if len(spec_dicts) > 1:
        spans = [start_span("serve.execute", category="serve",
                            parent=context,
                            case=spec_dict.get("case", "?")
                            if isinstance(spec_dict, dict) else "?",
                            batch=len(spec_dicts))
                 for spec_dict, context in zip(spec_dicts, contexts)]
        started = time.perf_counter()
        try:
            entries = _execute_batch(spec_dicts)
        except Exception:  # noqa: BLE001 - degrade, don't die
            entries = None
        wall = time.perf_counter() - started
        if entries is not None:
            for entry in entries:
                entry["execute_seconds"] = wall / len(entries)
            for span in spans:
                span.finish()
            return entries
        for span in spans:
            # the lockstep path refused; singles follow with their own
            # spans, so this one records only the failed attempt
            span.set("degraded", True)
            span.finish()
    entries = []
    for spec_dict, context in zip(spec_dicts, contexts):
        span = start_span("serve.execute", category="serve",
                          parent=context,
                          case=spec_dict.get("case", "?")
                          if isinstance(spec_dict, dict) else "?",
                          batch=1)
        started = time.perf_counter()
        try:
            entry = _execute_single(spec_dict)
        except Exception as exc:  # noqa: BLE001 - worker boundary
            name = spec_dict.get("case", "?") \
                if isinstance(spec_dict, dict) else "?"
            entry = _error_entry(
                str(name), f"{type(exc).__name__}: {exc}",
                traceback.format_exc())
        entry["execute_seconds"] = time.perf_counter() - started
        span.finish()
        entries.append(entry)
    return entries


def worker_main(conn) -> None:
    """Child-process loop: receive dispatches until exit/EOF.

    SIGINT is ignored so a Ctrl-C aimed at the daemon can't kill a
    worker mid-result; shutdown arrives as an ``exit`` message or pipe
    close, both of which exit cleanly.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # not the main thread of the child
        pass
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if not isinstance(message, tuple) or not message \
                or message[0] != "run":
            break
        _, dispatch_id, spec_dicts = message
        entries = execute_jobs(spec_dicts)
        try:
            conn.send(("done", dispatch_id, entries))
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass
