"""Command-line interface: the infrastructure as one command.

The paper's operational promise is that the whole compiler test suite
re-verifies with a single automated invocation (their ANT build).  This
module is that invocation::

    python -m repro suite                     # verify every benchmark
    python -m repro fuzz -n 200 --jobs 2      # differential compiler fuzzing
    python -m repro campaign fdct1 -n 1000 --jobs 4  # hardware fault injection
    python -m repro inject fdct1 --replay hang.json  # replay one fault
    python -m repro triage fdct1 --fault sdc.json    # first-divergence triage
    python -m repro table1                    # print the Table I metrics
    python -m repro flow fdct1 --workdir out  # full Figure 1 flow, artifacts on disk
    python -m repro translate dp.xml --to dot # one translation backend
    python -m repro serve --jobs auto --cache     # verification-as-a-service daemon
    python -m repro obs compare --fail-on-regression  # regression sentinel
    python -m repro version

Exit status is 0 only if everything verified/parsed cleanly, so the
command slots directly into CI for a compiler under development.
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import contextmanager
from datetime import datetime
from pathlib import Path
from typing import List, Optional

__all__ = ["main", "build_parser"]

#: per-case sizing presets used by the CLI (kept interactive-fast)
SUITE_SIZES = {
    "fdct1": {"pixels": 1024},
    "fdct2": {"pixels": 1024},
    "idct": {"pixels": 1024},
    "hamming": {"n_words": 256},
    "fir": {"n_out": 128, "taps": 8},
    "matmul": {"n": 8},
    "threshold": {"n_pixels": 512},
    "popcount": {"n_words": 128},
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _jobs_arg(text: str):
    """A worker count: a positive integer, or 'auto' for one worker
    per available CPU."""
    if text.strip().lower() == "auto":
        return "auto"
    try:
        return _positive_int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer or 'auto', got {text!r}"
        ) from None


def _resolve_jobs(value) -> int:
    """Turn a ``--jobs`` value into a concrete worker count."""
    if value == "auto":
        return max(os.cpu_count() or 1, 1)
    return int(value)


def _add_obs_flags(command: argparse.ArgumentParser, *,
                   coverage: bool = True) -> None:
    """The observability flags shared by suite/flow/fuzz/serve.

    ``coverage=False`` drops the ``--coverage`` flag for commands with
    no per-design coverage concept (the serve daemon).
    """
    command.add_argument("--trace", metavar="FILE", default=None,
                         help="record per-phase timing spans; writes "
                              "Chrome/Perfetto trace JSON to FILE (raw "
                              "events land next to it as .jsonl)")
    command.add_argument("--metrics", metavar="FILE", default=None,
                         help="write aggregated counters as JSON to FILE")
    if coverage:
        command.add_argument("--coverage", action="store_true",
                             help="collect FSM state/transition and "
                                  "operator activation coverage")
    command.add_argument("--ledger", metavar="PATH", default=None,
                         help="append this run to the SQLite run ledger "
                              "at PATH (default: $REPRO_LEDGER when set); "
                              "read it back with 'repro obs'")


@contextmanager
def _tracing(trace_path: Optional[str]):
    """Install a span recorder for the block; export Chrome JSON after.

    The export runs in the ``finally`` so a failing run still leaves a
    loadable trace (CI uploads these artifacts on failure).
    """
    if trace_path is None:
        yield
        return
    from .obs import TraceRecorder, export_chrome_trace, install, uninstall

    out = Path(trace_path)
    events = out.with_suffix(".jsonl")
    if events == out:
        events = out.with_suffix(".events.jsonl")
    recorder = TraceRecorder(events)
    install(recorder)
    try:
        yield
    finally:
        uninstall()
        recorder.close()
        count = export_chrome_trace(events, out)
        print(f"trace: {count} event(s) -> {out} "
              f"(open at https://ui.perfetto.dev)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Functional test infrastructure for compiler-"
                    "generated FPGA designs (DATE 2005 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    suite = sub.add_parser(
        "suite", help="compile, simulate and verify every benchmark")
    suite.add_argument("--seed", type=int, default=0,
                       help="stimulus seed (default 0)")
    suite.add_argument("--fsm-mode", choices=("generated", "interpreted"),
                       default="generated")
    suite.add_argument("--case", action="append", dest="cases",
                       metavar="NAME",
                       help="run only the named case(s); repeatable")
    suite.add_argument("--backend",
                       choices=("event", "oblivious", "compiled", "traced",
                                "batched"),
                       default="event",
                       help="simulation kernel (default: event; "
                            "'traced' is fastest for one stimulus, "
                            "'batched' amortizes over many, see "
                            "docs/performance.md)")
    suite.add_argument("--batch", type=_positive_int, default=1,
                       metavar="N",
                       help="verify N stimulus sets per case in one "
                            "batched simulation (forces --backend "
                            "batched; incompatible with --coverage)")
    suite.add_argument("--jobs", type=_jobs_arg, default=1, metavar="N",
                       help="run cases over N worker processes, or "
                            "'auto' for one per available CPU "
                            "(default 1: serial)")
    suite.add_argument("--cache", metavar="DIR", nargs="?",
                       const=".repro-cache", default=None,
                       help="artifact cache directory; skip unchanged "
                            "passing cases (default dir: .repro-cache)")
    _add_obs_flags(suite)
    suite.add_argument("--min-state-coverage", type=float, default=None,
                       metavar="PCT",
                       help="fail (exit 1) if aggregate FSM state coverage "
                            "is below PCT percent; implies --coverage")

    table1 = sub.add_parser(
        "table1", help="print the Table I metrics for every benchmark")
    table1.add_argument("--run", action="store_true",
                        help="also simulate to fill the timing column")

    flow = sub.add_parser(
        "flow", help="run the full Figure 1 flow for one benchmark, "
                     "writing every artifact")
    flow.add_argument("case", help="benchmark name (see 'suite')")
    flow.add_argument("--workdir", default="repro_out",
                      help="artifact directory (default: repro_out)")
    flow.add_argument("--seed", type=int, default=0)
    flow.add_argument("--backend",
                      choices=("event", "oblivious", "compiled", "traced",
                               "batched"),
                      default="event",
                      help="simulation kernel (default: event)")
    _add_obs_flags(flow)

    translate = sub.add_parser(
        "translate", help="translate a datapath/fsm/rtg XML document")
    translate.add_argument("path", help="the XML file")
    translate.add_argument("--to", dest="target", required=True,
                           choices=("dot", "python", "vhdl", "verilog"))
    translate.add_argument("--output", "-o", help="write here instead of "
                                                  "stdout")

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing: random programs through "
                     "golden + every simulation backend")
    fuzz.add_argument("--iterations", "-n", type=_positive_int, default=100,
                      help="number of random programs (default 100)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed; case i uses generator seed "
                           "seed+i (default 0)")
    fuzz.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                      help="fuzz over N worker processes (default 1)")
    fuzz.add_argument("--corpus", metavar="DIR", default="fuzz/corpus",
                      help="directory for minimized reproducers "
                           "(default: fuzz/corpus)")
    fuzz.add_argument("--max-cycles", type=_positive_int, default=None,
                      help="per-configuration cycle budget before a "
                           "program is classified as a timeout")
    fuzz.add_argument("--time-budget", type=float, default=None,
                      metavar="SECONDS",
                      help="stop the campaign after this many seconds "
                           "(used by the nightly CI job)")
    fuzz.add_argument("--input-seed", type=int, default=0,
                      help="stimulus seed for input memories (default 0)")
    fuzz.add_argument("--backends", metavar="LIST", default=None,
                      help="comma-separated simulation kernels to "
                           "cross-check (default: all registered); the "
                           "CI smoke matrix pairs 'event' with one "
                           "optimized kernel per job")
    fuzz.add_argument("--no-reduce", action="store_true",
                      help="write failures unminimized (faster triage "
                           "of a long campaign)")
    fuzz.add_argument("--replay", action="append", metavar="FILE",
                      help="replay corpus reproducer(s) instead of "
                           "fuzzing; exit 1 while any still fails")
    fuzz.add_argument("--no-triage", action="store_true",
                      help="skip the automatic divergence triage of "
                           "mismatch reproducers")
    fuzz.add_argument("--triage-out", metavar="DIR", default="triage",
                      help="artifact directory for auto-triage reports "
                           "(default: triage)")
    _add_obs_flags(fuzz)

    faults = sub.add_parser(
        "faults", help="fault-injection campaign: verify the "
                       "infrastructure catches mutated designs")
    faults.add_argument("case", help="benchmark name (single-"
                                     "configuration cases only)")
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--sample", type=int,
                        help="randomly sample this many faults")
    faults.add_argument("--limit-per-kind", type=int, default=None)

    inject = sub.add_parser(
        "inject", help="arm one hardware fault (bit-flip, stuck-at, "
                       "memory upset) and classify the run against "
                       "golden")
    inject.add_argument("case", help="benchmark name (single-"
                                     "configuration cases only)")
    inject.add_argument("--replay", metavar="FILE", default=None,
                        help="replay fault descriptor(s) from a "
                             "faultload JSON file (e.g. a hang "
                             "reproducer uploaded by CI) instead of "
                             "drawing one")
    inject.add_argument("--kind", choices=("stuck", "reg_flip", "mem_flip"),
                        default="stuck",
                        help="fault kind to draw (default: stuck)")
    inject.add_argument("--seed", type=int, default=0,
                        help="faultload + stimulus seed (default 0)")
    inject.add_argument("--backend",
                        choices=("event", "compiled", "traced"),
                        default="compiled",
                        help="simulation kernel (default: compiled)")
    inject.add_argument("--max-cycles", type=_positive_int,
                        default=2_000_000,
                        help="hang budget in cycles (default 2000000)")
    inject.add_argument("--save", metavar="FILE", default=None,
                        help="also write the descriptor(s) as a "
                             "replayable faultload JSON file")

    campaign = sub.add_parser(
        "campaign", help="fault-injection campaign: fan a seeded "
                         "faultload out, tally masked/sdc/hang/crash")
    campaign.add_argument("case", help="benchmark name (single-"
                                       "configuration cases only)")
    campaign.add_argument("--faults", "-n", type=_positive_int, default=200,
                          help="faultload size (default 200)")
    campaign.add_argument("--seed", type=int, default=0,
                          help="faultload + stimulus seed (default 0)")
    campaign.add_argument("--jobs", type=_jobs_arg, default=1,
                          metavar="N",
                          help="fan injections over N worker processes, "
                               "or 'auto' for one per available CPU "
                               "(default 1: serial)")
    campaign.add_argument("--backend",
                          choices=("event", "compiled", "traced",
                                   "batched"),
                          default="compiled",
                          help="simulation kernel (default: compiled; "
                               "'batched' groups mem_flip faults into "
                               "lockstep lanes)")
    campaign.add_argument("--kinds", metavar="LIST", default=None,
                          help="comma-separated fault kinds to draw "
                               "(default: stuck,reg_flip,mem_flip)")
    campaign.add_argument("--hang-factor", type=_positive_int, default=4,
                          help="hang budget = baseline cycles x this "
                               "(default 4)")
    campaign.add_argument("--time-budget", type=float, default=None,
                          metavar="SECONDS",
                          help="stop scheduling injections after this "
                               "many seconds (the nightly CI job)")
    campaign.add_argument("--faultload", metavar="FILE", default=None,
                          help="replay this saved faultload instead of "
                               "generating one")
    campaign.add_argument("--save-faultload", metavar="FILE", default=None,
                          help="write the generated faultload here")
    campaign.add_argument("--save-hangs", metavar="FILE", default=None,
                          help="write hang reproducer descriptors here "
                               "(only when hangs occurred)")
    campaign.add_argument("--ledger", metavar="PATH", default=None,
                          help="append this campaign to the SQLite run "
                               "ledger at PATH (default: $REPRO_LEDGER "
                               "when set)")
    campaign.add_argument("--triage-sdc", type=int, default=2,
                          metavar="N",
                          help="divergence-triage a seeded sample of N "
                               "sdc verdicts after the campaign "
                               "(default 2; 0 disables)")
    campaign.add_argument("--triage-out", metavar="DIR", default="triage",
                          help="artifact directory for those triage "
                               "reports (default: triage)")

    triage = sub.add_parser(
        "triage", help="divergence triage: bisect a failing pair to its "
                       "first divergent cycle/net, capture a waveform "
                       "window, rank cone-of-influence suspects")
    triage.add_argument("target",
                        help="benchmark case name, or a fuzz-corpus "
                             "reproducer (.py) written by 'repro fuzz'")
    triage.add_argument("--fault", metavar="FILE[:ID]", default=None,
                        help="replay one descriptor from a faultload "
                             "JSON file (fault-free vs faulted "
                             "lockstep); ':ID' picks a fault id, "
                             "default: first entry")
    triage.add_argument("--run", type=int, default=None, metavar="ID",
                        help="replay the first sdc fault recorded under "
                             "this ledger run id (an inject/campaign "
                             "row) instead of a faultload file")
    triage.add_argument("--against", default=None,
                        choices=("event", "compiled", "traced"),
                        help="triage a backend disagreement: this "
                             "reference kernel vs --backend")
    triage.add_argument("--backend",
                        choices=("event", "compiled", "traced"),
                        default="compiled",
                        help="subject simulation kernel "
                             "(default: compiled)")
    triage.add_argument("--seed", type=int, default=0,
                        help="stimulus seed (default 0)")
    triage.add_argument("--window", type=_positive_int, default=64,
                        metavar="N",
                        help="waveform ring-buffer size in cycles "
                             "(default 64); older cycles are dropped "
                             "and the report carries a truncation "
                             "marker")
    triage.add_argument("--stride", type=_positive_int, default=None,
                        metavar="N",
                        help="coarse checkpoint stride in cycles "
                             "(default: the window size)")
    triage.add_argument("--max-cycles", type=_positive_int,
                        default=1_000_000,
                        help="bisection budget in cycles "
                             "(default 1000000)")
    triage.add_argument("--out", metavar="DIR", default="triage",
                        help="artifact directory for the JSON record "
                             "and HTML report (default: triage)")
    triage.add_argument("--no-html", action="store_true",
                        help="write only the JSON record")
    triage.add_argument("--ledger", metavar="PATH", default=None,
                        help="append the triage record to the SQLite "
                             "run ledger at PATH (default: "
                             "$REPRO_LEDGER when set)")

    serve = sub.add_parser(
        "serve", help="verification as a service: a long-lived daemon "
                      "answering compile+simulate+verify jobs over an "
                      "NDJSON socket (see docs/serving.md)")
    serve.add_argument("--socket", metavar="PATH",
                       default="repro-serve.sock",
                       help="Unix socket path to listen on "
                            "(default: repro-serve.sock)")
    serve.add_argument("--http", type=_positive_int, default=None,
                       metavar="PORT",
                       help="also serve the HTTP shim on 127.0.0.1:PORT "
                            "(GET /healthz, GET /status, POST /jobs)")
    serve.add_argument("--jobs", type=_jobs_arg, default=1, metavar="N",
                       help="worker processes, or 'auto' for one per "
                            "available CPU (default 1)")
    serve.add_argument("--batch-max", type=_positive_int, default=8,
                       metavar="N",
                       help="max same-group jobs folded into one "
                            "batched lockstep dispatch (default 8; "
                            "1 disables batching)")
    serve.add_argument("--cache", metavar="DIR", nargs="?",
                       const=".repro-cache", default=None,
                       help="artifact cache directory; repeat jobs are "
                            "answered from disk and new passes stored "
                            "(default dir: .repro-cache, shared with "
                            "'repro suite --cache')")
    _add_obs_flags(serve, coverage=False)

    obs = sub.add_parser(
        "obs", help="cross-run observability: query the run ledger, "
                    "compare against baselines, render the dashboard")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    def _ledger_arg(command: argparse.ArgumentParser) -> None:
        command.add_argument("--ledger", metavar="PATH", default=None,
                             help="ledger database (default: $REPRO_LEDGER "
                                  "when set, else repro-ledger.sqlite)")

    obs_report = obs_sub.add_parser(
        "report", help="summarize recorded runs")
    _ledger_arg(obs_report)
    obs_report.add_argument("--limit", type=_positive_int, default=10,
                            metavar="N",
                            help="show the N most recent runs (default 10)")

    obs_compare = obs_sub.add_parser(
        "compare", help="regression sentinel: one run vs its rolling "
                        "baseline (median + scaled-MAD noise band)")
    _ledger_arg(obs_compare)
    obs_compare.add_argument("--baseline", metavar="PATH", default=None,
                             help="take baseline history from this ledger "
                                  "instead of the run's own (e.g. the "
                                  "committed CI baseline)")
    obs_compare.add_argument("--run", type=int, default=None, metavar="ID",
                             help="compare this run id (default: latest)")
    obs_compare.add_argument("--sigma", type=float, default=3.0,
                             help="perf noise-band width in scaled MADs "
                                  "(default 3)")
    obs_compare.add_argument("--min-samples", type=int, default=3,
                             metavar="N",
                             help="baseline points required before a key "
                                  "is judged (default 3)")
    obs_compare.add_argument("--min-rel", type=float, default=1.25,
                             metavar="RATIO",
                             help="perf findings also need current > "
                                  "RATIO * baseline median (default 1.25)")
    obs_compare.add_argument("--coverage-drop", type=float, default=5.0,
                             metavar="PTS",
                             help="flag coverage drops above PTS "
                                  "percentage points (default 5)")
    obs_compare.add_argument("--cache-drop", type=float, default=0.25,
                             metavar="RATE",
                             help="flag cache hit-rate drops above RATE "
                                  "(default 0.25)")
    obs_compare.add_argument("--fail-on-regression", action="store_true",
                             help="exit 1 when any regression is flagged "
                                  "(default: report only)")

    obs_dashboard = obs_sub.add_parser(
        "dashboard", help="render the ledger as one self-contained "
                          "offline HTML page")
    _ledger_arg(obs_dashboard)
    obs_dashboard.add_argument("--output", "-o",
                               default="repro-dashboard.html",
                               help="output file "
                                    "(default: repro-dashboard.html)")
    obs_dashboard.add_argument("--history", type=_positive_int, default=30,
                               metavar="N",
                               help="runs per trend series (default 30)")
    obs_dashboard.add_argument("--title", default="repro run ledger")

    obs_export = obs_sub.add_parser(
        "export", help="export ledger facts for external collectors")
    _ledger_arg(obs_export)
    obs_export.add_argument("--format", choices=("prom", "json"),
                            default="prom",
                            help="prom = Prometheus textfile collector, "
                                 "json = recent-run dump (default: prom)")
    obs_export.add_argument("--output", "-o", default=None,
                            help="write here instead of stdout")
    obs_export.add_argument("--history", type=_positive_int, default=30,
                            metavar="N",
                            help="runs included in the json dump "
                                 "(default 30)")

    obs_profile = obs_sub.add_parser(
        "profile", help="kernel hot-spot profiler: run one case and "
                        "attribute its simulated cycles and wall time "
                        "to FSM states and fused trace segments "
                        "(needs no ledger)")
    obs_profile.add_argument("case", metavar="CASE",
                             help="benchmark case to profile (see "
                                  "'repro suite --list')")
    obs_profile.add_argument("--backend", choices=("compiled", "traced"),
                             default="traced",
                             help="simulator backend (default: traced; "
                                  "traced also attributes fused "
                                  "loop/line segments)")
    obs_profile.add_argument("--seed", type=int, default=0,
                             help="stimulus seed (default 0)")
    obs_profile.add_argument("--fsm-mode",
                             choices=("generated", "interpreted"),
                             default="generated",
                             help="FSM flavour (default: generated)")
    obs_profile.add_argument("--top", type=_positive_int, default=15,
                             metavar="N",
                             help="hottest frames shown (default 15)")
    obs_profile.add_argument("--collapsed", metavar="FILE", default=None,
                             help="write cycle-weighted collapsed "
                                  "stacks (flamegraph.pl / speedscope "
                                  "input)")
    obs_profile.add_argument("--json", metavar="FILE", default=None,
                             help="write the full report as JSON")

    obs_gc = obs_sub.add_parser(
        "gc", help="drop old runs beyond a retention limit")
    _ledger_arg(obs_gc)
    obs_gc.add_argument("--keep", type=int, default=100, metavar="N",
                        help="newest runs to retain (default 100)")

    sub.add_parser("version", help="print the library version")
    return parser


def _load_xml(path: Path):
    from .hdl import load_datapath, load_fsm, load_rtg
    from .hdl.xmlio.common import XmlFormatError

    errors = []
    for loader in (load_datapath, load_fsm, load_rtg):
        try:
            return loader(path)
        except XmlFormatError as exc:
            errors.append(str(exc))
        except ValueError as exc:
            errors.append(str(exc))
    raise SystemExit(
        f"error: {path} is not a valid datapath/fsm/rtg document:\n  "
        + "\n  ".join(errors)
    )


def _cmd_suite(args) -> int:
    from .apps import CASE_BUILDERS, suite_case
    from .core import ArtifactCache, TestSuite
    from .obs import format_coverage, suite_metrics

    names = args.cases or list(CASE_BUILDERS)
    unknown = [name for name in names if name not in CASE_BUILDERS]
    if unknown:
        print(f"error: unknown case(s) {unknown}; "
              f"known: {sorted(CASE_BUILDERS)}", file=sys.stderr)
        return 2
    coverage = args.coverage or args.min_state_coverage is not None
    batch = args.batch if args.batch > 1 else 0
    if batch and coverage:
        print("error: --batch and --coverage are mutually exclusive "
              "(batched lanes share one kernel; per-lane coverage "
              "is not collected)", file=sys.stderr)
        return 2
    suite = TestSuite("cli")
    for name in names:
        suite.add(suite_case(name, **SUITE_SIZES.get(name, {})))
    from .obs.ledger import ledger_from_env

    ledger = ledger_from_env(args.ledger)
    try:
        cache = ArtifactCache(args.cache) if args.cache else None
        with _tracing(args.trace):
            report = suite.run(seed=args.seed, fsm_mode=args.fsm_mode,
                               backend=args.backend,
                               jobs=_resolve_jobs(args.jobs),
                               cache=cache, coverage=coverage,
                               batch=batch, ledger=ledger)
    except NotADirectoryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if ledger is not None:
            ledger.close()
    if ledger is not None:
        print(f"ledger -> {ledger.path}")
    print(report.summary())
    print()
    print(report.metrics_table())
    if coverage and report.coverage is not None:
        print()
        print(format_coverage(report.coverage))
    if cache is not None:
        print(cache.summary())
    if args.backend in ("compiled", "traced", "batched") or batch:
        from .core.kernelcache import default_cache

        print(default_cache().describe())
    if args.metrics:
        metrics = suite_metrics(report, cache=cache)
        metrics.write(args.metrics)
        print(f"metrics -> {args.metrics}")
    if not report.passed:
        return 1
    if args.min_state_coverage is not None:
        if report.coverage is None:
            print("coverage gate FAILED: no coverage was collected "
                  "(the run produced no coverage report)", file=sys.stderr)
            return 1
        got = 100 * report.coverage.state_coverage
        if got < args.min_state_coverage:
            print(f"coverage gate FAILED: aggregate FSM state coverage "
                  f"{got:.1f}% < required {args.min_state_coverage:.1f}%",
                  file=sys.stderr)
            return 1
        print(f"coverage gate passed: {got:.1f}% >= "
              f"{args.min_state_coverage:.1f}%")
    return 0


def _cmd_table1(args) -> int:
    from .apps import CASE_BUILDERS, suite_case
    from .core import collect_metrics, format_table, verify_design

    rows = []
    for name in CASE_BUILDERS:
        case = suite_case(name, **SUITE_SIZES.get(name, {}))
        design = case.compile()
        if args.run:
            result = verify_design(design, case.func, case.inputs(0))
            if not result.passed:
                print(result.summary(), file=sys.stderr)
                return 1
            rows.append(collect_metrics(
                design, simulation_seconds=result.simulation_seconds,
                cycles=result.cycles))
        else:
            rows.append(collect_metrics(design))
    print(format_table(rows))
    return 0


def _cmd_flow(args) -> int:
    from .apps import CASE_BUILDERS, suite_case
    from .core import standard_flow

    if args.case not in CASE_BUILDERS:
        print(f"error: unknown case {args.case!r}; "
              f"known: {sorted(CASE_BUILDERS)}", file=sys.stderr)
        return 2
    case = suite_case(args.case, **SUITE_SIZES.get(args.case, {}))
    inputs = case.inputs(args.seed) if case.inputs else None
    flow = standard_flow(case.func, case.arrays, dict(case.params),
                         workdir=args.workdir, inputs=inputs,
                         n_partitions=case.n_partitions,
                         backend=args.backend, coverage=args.coverage)
    with _tracing(args.trace):
        report = flow.run()
    print(report.summary())
    if args.coverage and report.context.get("coverage") is not None:
        from .obs import format_coverage

        print()
        print(format_coverage(report.context["coverage"]))
    if args.metrics:
        from .obs import flow_metrics

        flow_metrics(report).write(args.metrics)
        print(f"metrics -> {args.metrics}")
    from .obs.ledger import ledger_from_env

    ledger = ledger_from_env(args.ledger)
    if ledger is not None:
        with ledger:
            ledger.record_flow(report, app=args.case, backend=args.backend,
                               size=case.params)
        print(f"ledger -> {ledger.path}")
    print(f"\nartifacts in {args.workdir}/")
    return 0 if report.context.get("passed") else 1


def _cmd_translate(args) -> int:
    from .translate import translate

    artifact = _load_xml(Path(args.path))
    text = translate(artifact, args.target)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def _write_triage(result, basename: str, out_dir: str, ledger, *,
                  wall_seconds: float = 0.0, html: bool = True) -> None:
    """Persist one triage result: artifacts on disk + a ledger row."""
    from .obs.triage import attach_to_ledger

    paths = result.write(out_dir, basename, html=html)
    for line in result.record.describe().splitlines():
        print(f"  triage: {line}")
    for kind in sorted(paths):
        print(f"  triage {kind} -> {paths[kind]}")
    if ledger is not None:
        run_id = attach_to_ledger(ledger, result,
                                  wall_seconds=wall_seconds,
                                  argv=sys.argv[1:], paths=paths)
        print(f"  triage ledger row -> #{run_id}")


def _triage_fuzz_mismatch(entry, basename: str, out_dir: str,
                          ledger) -> None:
    """Best-effort auto-triage of one fuzz mismatch reproducer.

    Triage is diagnostics, not a verdict: a triage crash must never turn
    a recorded reproducer into a CLI failure, so everything is caught.
    """
    import time

    from .obs.triage import TriageError, triage_fuzz_entry

    start = time.monotonic()
    try:
        result = triage_fuzz_entry(entry)
    except TriageError as exc:
        print(f"  triage: skipped ({exc})")
        return
    except Exception as exc:  # noqa: BLE001 - diagnostics stay best-effort
        print(f"  triage: failed ({type(exc).__name__}: {exc})")
        return
    _write_triage(result, f"{basename}-triage", out_dir, ledger,
                  wall_seconds=time.monotonic() - start)


def _cmd_fuzz(args) -> int:
    from .fuzz import (CorpusEntry, DEFAULT_BACKENDS, DEFAULT_MAX_CYCLES,
                       load_entry, reduce_program, run_campaign,
                       run_program, save_entry)
    from .sim import SIMULATOR_BACKENDS

    max_cycles = args.max_cycles or DEFAULT_MAX_CYCLES
    backends = DEFAULT_BACKENDS
    if args.backends:
        backends = tuple(name.strip()
                         for name in args.backends.split(",") if name.strip())
        unknown = [name for name in backends
                   if name not in SIMULATOR_BACKENDS]
        if unknown:
            print(f"error: unknown backend(s) {unknown}; "
                  f"known: {sorted(SIMULATOR_BACKENDS)}", file=sys.stderr)
            return 2

    if args.replay:
        status = 0
        for path in args.replay:
            entry = load_entry(path)
            outcome = run_program(entry.program, max_cycles=max_cycles,
                                  input_seed=entry.input_seed)
            if entry.xfail:
                # known-open divergence: healthy iff it still fails
                # exactly as recorded (see docs/fuzzing.md)
                ok = entry.outcome.matches(outcome)
                recorded = f"recorded: {entry.kind}, xfail"
            else:
                ok = not outcome.failed
                recorded = f"recorded: {entry.kind}"
            marker = "PASS" if ok else "FAIL"
            print(f"[{marker}] {path}: {outcome.describe()} ({recorded})")
            if not ok:
                status = 1
        return status

    from .obs.ledger import ledger_from_env

    ledger = ledger_from_env(args.ledger)
    try:
        with _tracing(args.trace):
            report = run_campaign(
                args.iterations, seed=args.seed, jobs=args.jobs,
                backends=backends, max_cycles=max_cycles,
                input_seed=args.input_seed,
                time_budget=args.time_budget, coverage=args.coverage,
                ledger=ledger,
            )
        for failure in report.failures:
            if failure.program is None:
                continue  # harness error: no program to reduce
            outcome = failure.outcome
            if not args.no_reduce:
                reduction = reduce_program(failure.program, outcome,
                                           max_cycles=max_cycles,
                                           input_seed=args.input_seed)
                program, outcome = reduction.program, reduction.outcome
            else:
                program = failure.program
            entry = CorpusEntry(program=program, kind=outcome.kind,
                                backend=outcome.backend,
                                exc_type=outcome.exc_type,
                                input_seed=args.input_seed,
                                detail=outcome.detail)
            path = save_entry(entry, args.corpus)
            report.written.append(str(path))
            if outcome.kind == "mismatch" and not args.no_triage:
                # divergence triage rides along with the minimized
                # reproducer: first divergent cycle/net + suspect cone
                _triage_fuzz_mismatch(entry, Path(path).stem,
                                      args.triage_out, ledger)
    finally:
        if ledger is not None:
            ledger.close()
    if ledger is not None:
        print(f"ledger -> {ledger.path}")
    print(report.summary())
    if args.metrics:
        from .obs import campaign_metrics

        campaign_metrics(report).write(args.metrics)
        print(f"metrics -> {args.metrics}")
    return 0 if report.passed else 1


def _cmd_faults(args) -> int:
    from .apps import CASE_BUILDERS, suite_case
    from .core.faults import run_campaign

    if args.case not in CASE_BUILDERS:
        print(f"error: unknown case {args.case!r}; "
              f"known: {sorted(CASE_BUILDERS)}", file=sys.stderr)
        return 2
    case = suite_case(args.case, **SUITE_SIZES.get(args.case, {}))
    design = case.compile()
    if design.multi_configuration:
        print(f"error: {args.case} compiles to multiple configurations; "
              f"fault injection needs a single one", file=sys.stderr)
        return 2
    result = run_campaign(design, case.func, case.inputs(args.seed),
                          sample=args.sample, seed=args.seed,
                          limit_per_kind=args.limit_per_kind,
                          max_cycles=2_000_000)
    print(result.summary())
    survivors = result.survivors
    if survivors:
        print(f"\n{len(survivors)} survivor(s) — equivalent or "
              f"stimulus-masked mutants; consider boundary-value stimuli")
    return 0


def _compile_injectable(case_name: str, seed: int):
    """Shared by inject/campaign: (case, design, inputs) or an error."""
    from .apps import CASE_BUILDERS, suite_case

    if case_name not in CASE_BUILDERS:
        print(f"error: unknown case {case_name!r}; "
              f"known: {sorted(CASE_BUILDERS)}", file=sys.stderr)
        return None
    case = suite_case(case_name, **SUITE_SIZES.get(case_name, {}))
    design = case.compile()
    if design.multi_configuration:
        print(f"error: {case_name} compiles to multiple configurations; "
              f"fault injection needs a single one", file=sys.stderr)
        return None
    return case, design, case.inputs(seed) if case.inputs else None


def _cmd_inject(args) -> int:
    from .inject import (FaultloadGenerator, load_faultload, run_injection,
                         save_faultload)

    compiled = _compile_injectable(args.case, args.seed)
    if compiled is None:
        return 2
    case, design, inputs = compiled

    if args.replay:
        if not Path(args.replay).exists():
            print(f"error: no faultload at {args.replay}", file=sys.stderr)
            return 2
        faults = load_faultload(args.replay)
    else:
        # size the upset window from the fault-free run, so transient
        # flips land while the design is live
        baseline = run_injection(design, case.func, None, inputs,
                                 backend=args.backend,
                                 max_cycles=args.max_cycles)
        if baseline.verdict != "masked":
            print(f"error: fault-free baseline classifies as "
                  f"{baseline.verdict!r} ({baseline.note})",
                  file=sys.stderr)
            return 1
        generator = FaultloadGenerator(design, seed=args.seed,
                                       max_cycle=baseline.cycles)
        faults = generator.generate(1, kinds=(args.kind,))

    for fault in faults:
        result = run_injection(design, case.func, fault, inputs,
                               backend=args.backend,
                               max_cycles=args.max_cycles)
        line = (f"[{result.verdict.upper()}] {fault.describe()} "
                f"(mechanism {result.mechanism}, {result.cycles} cycles, "
                f"{result.seconds:.3f}s)")
        if result.note:
            line += f"\n  {result.note}"
        print(line)
    if args.save:
        path = save_faultload(faults, args.save)
        print(f"faultload -> {path}")
    return 0


def _triage_campaign_sdc(report, design, func, inputs, args,
                         ledger) -> None:
    """Triage a seeded sample of the campaign's sdc verdicts.

    Fault-vs-fault-free lockstep names the first corrupted cycle/net
    for each sampled silent corruption; the records feed the dashboard's
    kind × top-suspect-net table.  Best-effort: a triage crash never
    fails the campaign.
    """
    import random
    import time

    from .obs.triage import TriageError, triage_fault

    sdc = report.sdc_results
    if not sdc:
        return
    take = min(args.triage_sdc, len(sdc))
    picks = random.Random(args.seed).sample(sdc, take)
    backend = args.backend if args.backend != "batched" else "compiled"
    print(f"triage: {take}/{len(sdc)} sdc verdict(s) sampled "
          f"(seed {args.seed})")
    for result in picks:
        fault = result.fault
        start = time.monotonic()
        try:
            triaged = triage_fault(design, func, fault, inputs,
                                   backend=backend, app=args.case,
                                   kind="campaign-sdc")
        except TriageError as exc:
            print(f"  triage: {fault.fault_id} skipped ({exc})")
            continue
        except Exception as exc:  # noqa: BLE001 - diagnostics only
            print(f"  triage: {fault.fault_id} failed "
                  f"({type(exc).__name__}: {exc})")
            continue
        _write_triage(triaged, f"{args.case}-{fault.fault_id}",
                      args.triage_out, ledger,
                      wall_seconds=time.monotonic() - start)


def _cmd_campaign(args) -> int:
    from .inject import (FaultloadGenerator, load_faultload, run_campaign,
                         run_injection, save_faultload)
    from .inject.faultload import FAULT_KINDS
    from .obs.ledger import ledger_from_env

    compiled = _compile_injectable(args.case, args.seed)
    if compiled is None:
        return 2
    case, design, inputs = compiled

    if args.faultload:
        if not Path(args.faultload).exists():
            print(f"error: no faultload at {args.faultload}",
                  file=sys.stderr)
            return 2
        faults = load_faultload(args.faultload)
    else:
        kinds = FAULT_KINDS
        if args.kinds:
            kinds = tuple(name.strip() for name in args.kinds.split(",")
                          if name.strip())
            unknown = [name for name in kinds if name not in FAULT_KINDS]
            if unknown:
                print(f"error: unknown fault kind(s) {unknown}; "
                      f"known: {list(FAULT_KINDS)}", file=sys.stderr)
                return 2
        probe = run_injection(design, case.func, None, inputs,
                              backend=args.backend
                              if args.backend != "batched" else "compiled")
        if probe.verdict != "masked":
            print(f"error: fault-free baseline classifies as "
                  f"{probe.verdict!r} ({probe.note})", file=sys.stderr)
            return 1
        generator = FaultloadGenerator(design, seed=args.seed,
                                       max_cycle=probe.cycles)
        faults = generator.generate(args.faults, kinds=kinds)

    ledger = ledger_from_env(args.ledger)
    try:
        try:
            report = run_campaign(design, case.func, faults, inputs,
                                  app=args.case, backend=args.backend,
                                  jobs=_resolve_jobs(args.jobs),
                                  seed=args.seed,
                                  hang_factor=args.hang_factor,
                                  time_budget=args.time_budget,
                                  ledger=ledger)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if ledger is not None:
            print(f"ledger -> {ledger.path}")
        print(report.summary())
        if args.triage_sdc > 0:
            _triage_campaign_sdc(report, design, case.func, inputs,
                                 args, ledger)
    finally:
        if ledger is not None:
            ledger.close()
    if args.save_faultload:
        path = save_faultload(faults, args.save_faultload)
        print(f"faultload -> {path}")
    hangs = report.hang_reproducers
    if args.save_hangs and hangs:
        path = save_faultload(hangs, args.save_hangs)
        print(f"{len(hangs)} hang reproducer(s) -> {path} "
              f"(replay with 'repro inject {args.case} --replay {path}')")
    return 0


def _fault_from_file(spec: str):
    """Resolve a ``--fault FILE[:ID]`` spec to one descriptor."""
    from .inject import load_faultload

    path, _, fault_id = spec.partition(":")
    if not Path(path).exists():
        print(f"error: no faultload at {path}", file=sys.stderr)
        return None
    faults = load_faultload(path)
    if not faults:
        print(f"error: faultload {path} is empty", file=sys.stderr)
        return None
    if not fault_id:
        return faults[0]
    for fault in faults:
        if fault.fault_id == fault_id:
            return fault
    print(f"error: no fault {fault_id!r} in {path}; ids: "
          f"{[fault.fault_id for fault in faults]}", file=sys.stderr)
    return None


def _fault_from_ledger(ledger, args):
    """First replayable non-masked descriptor under ``--run ID``."""
    from .inject import FaultDescriptor
    from .obs.ledger import LEDGER_ENV, Ledger

    owned = None
    if ledger is None:
        path = args.ledger or os.environ.get(LEDGER_ENV) \
            or "repro-ledger.sqlite"
        if not Path(path).exists():
            print(f"error: --run needs a ledger; none at {path}",
                  file=sys.stderr)
            return None
        ledger = owned = Ledger(path)
    try:
        rows = ledger.fault_rows(args.run)
    finally:
        if owned is not None:
            owned.close()
    rows = [row for row in rows if row.descriptor]
    picks = [row for row in rows if row.verdict == "sdc"] \
        or [row for row in rows if row.verdict != "masked"]
    if not picks:
        print(f"error: ledger run #{args.run} has no replayable "
              f"non-masked fault row", file=sys.stderr)
        return None
    row = picks[0]
    print(f"replaying fault {row.fault_id} (verdict {row.verdict}) "
          f"from ledger run #{args.run}")
    return FaultDescriptor.from_dict(row.descriptor)


def _cmd_triage(args) -> int:
    import time

    from .obs.ledger import ledger_from_env
    from .obs.triage import (TriageError, triage_backends, triage_fault,
                             triage_fuzz_entry)

    start = time.monotonic()
    target = args.target
    ledger = ledger_from_env(args.ledger)
    try:
        try:
            if target.endswith(".py"):
                if not Path(target).exists():
                    print(f"error: no corpus reproducer at {target}",
                          file=sys.stderr)
                    return 2
                from .fuzz import load_entry

                entry = load_entry(target)
                result = triage_fuzz_entry(entry, window=args.window,
                                           stride=args.stride,
                                           max_cycles=args.max_cycles)
                basename = f"{Path(target).stem}-triage"
            else:
                compiled = _compile_injectable(target, args.seed)
                if compiled is None:
                    return 2
                case, design, inputs = compiled
                fault = None
                if args.run is not None:
                    fault = _fault_from_ledger(ledger, args)
                    if fault is None:
                        return 2
                elif args.fault:
                    fault = _fault_from_file(args.fault)
                    if fault is None:
                        return 2
                if fault is not None:
                    result = triage_fault(
                        design, case.func, fault, inputs,
                        backend=args.backend, window=args.window,
                        stride=args.stride, max_cycles=args.max_cycles,
                        app=target)
                    basename = f"{target}-{fault.fault_id}"
                elif args.against:
                    result = triage_backends(
                        design, inputs, backend_ref=args.against,
                        backend_sub=args.backend, window=args.window,
                        stride=args.stride, max_cycles=args.max_cycles,
                        app=target)
                    basename = f"{target}-{args.against}" \
                               f"-vs-{args.backend}"
                else:
                    print("error: pick a failing pair: --fault "
                          "FILE[:ID], --run ID, or --against BACKEND",
                          file=sys.stderr)
                    return 2
        except TriageError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        _write_triage(result, basename, args.out, ledger,
                      wall_seconds=time.monotonic() - start,
                      html=not args.no_html)
    finally:
        if ledger is not None:
            ledger.close()
    return 0


def _obs_report(ledger, args) -> int:
    counts = ledger.counts()
    if not counts:
        print(f"ledger {ledger.path}: empty")
        return 0
    tally = ", ".join(f"{kind}={count}"
                      for kind, count in sorted(counts.items()))
    print(f"ledger {ledger.path}: {tally}")
    for run in ledger.runs(limit=args.limit):
        when = datetime.fromtimestamp(run.started_at) \
            .strftime("%Y-%m-%d %H:%M:%S")
        verdict = "PASS" if run.passed else "FAIL"
        line = (f"  #{run.run_id} {when} [{verdict}] {run.kind} "
                f"wall {run.wall_seconds:.2f}s")
        if run.backend:
            line += f" backend={run.backend}"
        if run.jobs:
            line += f" jobs={run.jobs}"
        if run.git_rev:
            line += f" rev={run.git_rev}"
        print(line)
    return 0


def _obs_compare(ledger, args) -> int:
    from .obs.ledger import Ledger
    from .obs.regress import Thresholds, compare_run

    thresholds = Thresholds(sigma=args.sigma,
                            min_samples=args.min_samples,
                            min_rel=args.min_rel,
                            coverage_drop=args.coverage_drop,
                            cache_drop=args.cache_drop)
    baseline = None
    if args.baseline:
        if not Path(args.baseline).exists():
            print(f"error: no baseline ledger at {args.baseline}",
                  file=sys.stderr)
            return 2
        baseline = Ledger(args.baseline)
    try:
        report = compare_run(ledger, run_id=args.run, baseline=baseline,
                             thresholds=thresholds)
    finally:
        if baseline is not None:
            baseline.close()
    print(report.summary())
    if report.run is None:
        return 2
    if report.findings and args.fail_on_regression:
        return 1
    return 0


def _obs_dashboard(ledger, args) -> int:
    from .obs.dashboard import render_dashboard

    html = render_dashboard(ledger, history=args.history, title=args.title)
    out = Path(args.output)
    if out.parent and not out.parent.exists():
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(html)
    print(f"dashboard -> {out} (self-contained; open in any browser)")
    return 0


def _obs_export(ledger, args) -> int:
    from .obs.dashboard import export_json, export_prometheus

    if args.format == "prom":
        text = export_prometheus(ledger)
    else:
        text = export_json(ledger, history=args.history)
    if args.output:
        Path(args.output).write_text(text)
        print(f"export -> {args.output}")
    else:
        print(text, end="")
    return 0


def _obs_gc(ledger, args) -> int:
    if args.keep < 0:
        print(f"error: --keep must be >= 0, got {args.keep}",
              file=sys.stderr)
        return 2
    removed = ledger.gc(keep=args.keep)
    print(f"gc: removed {removed} run(s), kept the newest "
          f"{args.keep} in {ledger.path}")
    return 0


def _obs_profile(args) -> int:
    from .obs.profile import ProfileError, profile_case

    try:
        report = profile_case(args.case, seed=args.seed,
                              backend=args.backend,
                              fsm_mode=args.fsm_mode)
    except ProfileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.format(top=args.top))
    if args.collapsed:
        path = report.write_collapsed(args.collapsed)
        print(f"collapsed stacks -> {path} "
              f"(feed to flamegraph.pl or speedscope)")
    if args.json:
        path = report.write_json(args.json)
        print(f"profile json -> {path}")
    return 0


_OBS_COMMANDS = {
    "report": _obs_report,
    "compare": _obs_compare,
    "dashboard": _obs_dashboard,
    "export": _obs_export,
    "gc": _obs_gc,
}


def _cmd_obs(args) -> int:
    from .obs.ledger import LEDGER_ENV, Ledger, LedgerError

    # profile runs a fresh simulation; it neither needs nor opens
    # a ledger
    if args.obs_command == "profile":
        return _obs_profile(args)

    path = args.ledger or os.environ.get(LEDGER_ENV) \
        or "repro-ledger.sqlite"
    if not Path(path).exists():
        print(f"error: no ledger at {path} (record one with --ledger/"
              f"${LEDGER_ENV} on suite/flow/fuzz runs)", file=sys.stderr)
        return 2
    try:
        with Ledger(path) as ledger:
            return _OBS_COMMANDS[args.obs_command](ledger, args)
    except LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_serve(args) -> int:
    import asyncio

    from .obs.ledger import LEDGER_ENV
    from .serve import ServeDaemon, ServeScheduler

    jobs = _resolve_jobs(args.jobs)
    ledger_path = args.ledger or os.environ.get(LEDGER_ENV) or None
    try:
        scheduler = ServeScheduler(jobs=jobs, batch_max=args.batch_max,
                                   cache=args.cache)
    except (RuntimeError, NotADirectoryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    daemon = ServeDaemon(scheduler, socket_path=args.socket,
                         http_port=args.http, ledger_path=ledger_path)
    print(f"serve: {jobs} worker(s), batch_max={args.batch_max}, "
          f"listening on {args.socket}"
          + (f" and http://127.0.0.1:{args.http}" if args.http else ""),
          flush=True)
    with _tracing(args.trace):
        stats = asyncio.run(daemon.run())
    print(f"serve: {stats['submitted']} job(s) submitted, "
          f"{stats['executed']} executed, "
          f"{stats['coalesced']} coalesced, "
          f"{stats['memo_hits'] + stats['artifact_hits']} cache-served, "
          f"{stats['failed']} failed "
          f"({stats['wall_seconds']:.1f}s)")
    if args.metrics:
        from .obs.metrics import serve_metrics

        serve_metrics(stats).write(args.metrics)
        print(f"metrics -> {args.metrics}")
    if ledger_path is not None:
        print(f"ledger -> {ledger_path}")
    return 0


def _cmd_version(args) -> int:
    from . import __version__

    print(f"repro {__version__}")
    return 0


_COMMANDS = {
    "suite": _cmd_suite,
    "fuzz": _cmd_fuzz,
    "faults": _cmd_faults,
    "inject": _cmd_inject,
    "campaign": _cmd_campaign,
    "triage": _cmd_triage,
    "table1": _cmd_table1,
    "flow": _cmd_flow,
    "translate": _cmd_translate,
    "serve": _cmd_serve,
    "obs": _cmd_obs,
    "version": _cmd_version,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
