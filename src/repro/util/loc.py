"""Line counting, as used in Table I of the paper.

The paper reports "number of lines" for the input source (loJava), the XML
descriptions (loXML) and the generated FSM code (loJava FSM).  We follow the
simplest reading: every non-blank line counts.  A stricter variant that also
drops comment-only lines is provided for completeness.
"""

from __future__ import annotations

import inspect
from typing import Callable

__all__ = ["count_lines", "count_code_lines", "count_source_lines"]


def count_lines(text: str) -> int:
    """Number of non-blank lines in *text*."""
    return sum(1 for line in text.splitlines() if line.strip())


def count_code_lines(text: str, comment_prefixes: tuple = ("#", "<!--")) -> int:
    """Non-blank lines that are not comment-only lines."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not any(stripped.startswith(p) for p in comment_prefixes):
            count += 1
    return count


def count_source_lines(func: Callable) -> int:
    """Non-blank source lines of a Python function (the paper's loJava)."""
    return count_lines(inspect.getsource(func))
