"""Shared utilities: bit-accurate values, memory files, line counting."""

from .bitvector import BitVector, bv
from .files import (MemoryImage, MemoryMismatch, compare_images,
                    load_memory_file, save_memory_file)
from .loc import count_code_lines, count_lines, count_source_lines

__all__ = [
    "BitVector",
    "bv",
    "MemoryImage",
    "MemoryMismatch",
    "compare_images",
    "load_memory_file",
    "save_memory_file",
    "count_lines",
    "count_code_lines",
    "count_source_lines",
]
