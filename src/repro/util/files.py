"""Memory image files.

The paper stores memory contents and I/O stimuli in files shared between the
golden software execution and the hardware simulation; after simulation "a
simple comparison of data content is performed to verify results".  This
module defines that file format and the in-memory :class:`MemoryImage` both
sides operate on.

File format (``.mem``)::

    # free-form comments
    width 16
    depth 4096
    @0000 002a
    @0001 ffd6
    0013            # no @addr: next sequential address

Words are stored as unsigned hexadecimal; interpretation (signed/unsigned)
is up to the consumer, exactly like a RAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

__all__ = ["MemoryImage", "MemoryMismatch", "compare_images", "load_memory_file",
           "save_memory_file"]


@dataclass(frozen=True)
class MemoryMismatch:
    """One differing word between two memory images."""

    address: int
    expected: int
    actual: int

    def describe(self, width: int) -> str:
        digits = (width + 3) // 4
        return (
            f"@{self.address:04x}: expected 0x{self.expected:0{digits}x}, "
            f"got 0x{self.actual:0{digits}x}"
        )


class MemoryImage:
    """A fixed-width, fixed-depth word-addressable memory content."""

    def __init__(self, width: int, depth: int,
                 words: Optional[Sequence[int]] = None,
                 name: str = "mem") -> None:
        if width <= 0:
            raise ValueError(f"memory width must be positive, got {width}")
        if depth <= 0:
            raise ValueError(f"memory depth must be positive, got {depth}")
        self.width = width
        self.depth = depth
        self.name = name
        self._mask = (1 << width) - 1
        if words is None:
            self._words: List[int] = [0] * depth
        else:
            if len(words) > depth:
                raise ValueError(
                    f"{len(words)} initial words exceed depth {depth}"
                )
            self._words = [w & self._mask for w in words]
            self._words.extend([0] * (depth - len(words)))
        #: write observers ``callback(address, value)`` — used by
        #: simulated SRAM ports to keep their combinational read path
        #: coherent when another bus master (e.g. a co-simulated CPU)
        #: writes the same storage directly
        self._watchers: List = []

    # ------------------------------------------------------------------
    # Word access.  Reads/writes mask to width; signed helpers follow
    # two's complement.
    # ------------------------------------------------------------------
    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.depth:
            raise IndexError(
                f"address {address} out of range for {self.name!r} "
                f"(depth {self.depth})"
            )

    def read(self, address: int) -> int:
        self._check_address(address)
        return self._words[address]

    def read_signed(self, address: int) -> int:
        word = self.read(address)
        if word & (1 << (self.width - 1)):
            return word - (1 << self.width)
        return word

    def write(self, address: int, value: int) -> None:
        self._check_address(address)
        value &= self._mask
        self._words[address] = value
        for watcher in self._watchers:
            watcher(address, value)

    def watch(self, callback) -> None:
        """Call ``callback(address, value)`` after every write."""
        self._watchers.append(callback)

    def unwatch(self, callback) -> None:
        self._watchers.remove(callback)

    def fill(self, value: int) -> None:
        masked = value & self._mask
        for i in range(self.depth):
            self._words[i] = masked
        for watcher in self._watchers:
            for i in range(self.depth):
                watcher(i, masked)

    def load_words(self, words: Iterable[int], base: int = 0) -> None:
        for offset, word in enumerate(words):
            self.write(base + offset, word)

    def words(self) -> List[int]:
        """A copy of all words (unsigned)."""
        return list(self._words)

    def words_signed(self) -> List[int]:
        half = 1 << (self.width - 1)
        full = 1 << self.width
        return [w - full if w >= half else w for w in self._words]

    def copy(self, name: Optional[str] = None) -> "MemoryImage":
        return MemoryImage(self.width, self.depth, self._words,
                           name=name or self.name)

    def __len__(self) -> int:
        return self.depth

    def __iter__(self) -> Iterator[int]:
        return iter(self._words)

    def __getitem__(self, address: int) -> int:
        return self.read(address)

    def __setitem__(self, address: int, value: int) -> None:
        self.write(address, value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryImage):
            return NotImplemented
        return (self.width == other.width and self.depth == other.depth
                and self._words == other._words)

    def __repr__(self) -> str:
        return (f"MemoryImage(name={self.name!r}, width={self.width}, "
                f"depth={self.depth})")

    # ------------------------------------------------------------------
    # File I/O
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path], *, sparse: bool = False) -> None:
        save_memory_file(self, path, sparse=sparse)

    @classmethod
    def load(cls, path: Union[str, Path], name: Optional[str] = None) -> "MemoryImage":
        return load_memory_file(path, name=name)


def save_memory_file(image: MemoryImage, path: Union[str, Path], *,
                     sparse: bool = False) -> None:
    """Write *image* to *path* in ``.mem`` format.

    With ``sparse=True`` only non-zero words are emitted (with explicit
    ``@addr`` prefixes), which keeps stimulus files for large, mostly-empty
    memories small.
    """
    path = Path(path)
    digits = (image.width + 3) // 4
    addr_digits = max(4, (max(image.depth - 1, 1).bit_length() + 3) // 4)
    lines = [
        f"# memory image {image.name!r}",
        f"width {image.width}",
        f"depth {image.depth}",
    ]
    if sparse:
        for address, word in enumerate(image):
            if word:
                lines.append(f"@{address:0{addr_digits}x} {word:0{digits}x}")
    else:
        for address, word in enumerate(image):
            lines.append(f"@{address:0{addr_digits}x} {word:0{digits}x}")
    path.write_text("\n".join(lines) + "\n")


def load_memory_file(path: Union[str, Path],
                     name: Optional[str] = None) -> MemoryImage:
    """Parse a ``.mem`` file written by :func:`save_memory_file`."""
    path = Path(path)
    width: Optional[int] = None
    depth: Optional[int] = None
    entries: List[tuple] = []
    cursor = 0
    for line_no, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if parts[0] == "width":
            width = int(parts[1])
        elif parts[0] == "depth":
            depth = int(parts[1])
        elif parts[0].startswith("@"):
            cursor = int(parts[0][1:], 16)
            if len(parts) < 2:
                raise ValueError(f"{path}:{line_no}: @addr line without a word")
            entries.append((cursor, int(parts[1], 16)))
            cursor += 1
        else:
            for token in parts:
                entries.append((cursor, int(token, 16)))
                cursor += 1
    if width is None or depth is None:
        raise ValueError(f"{path}: missing 'width' or 'depth' header")
    image = MemoryImage(width, depth, name=name or path.stem)
    for address, word in entries:
        image.write(address, word)
    return image


def compare_images(expected: MemoryImage, actual: MemoryImage,
                   *, limit: Optional[int] = None) -> List[MemoryMismatch]:
    """Word-by-word comparison; the paper's post-simulation check.

    Returns the mismatching words (up to *limit* of them).  Width or depth
    disagreement is an error, not a mismatch list — it means the designs are
    not comparable at all.
    """
    if expected.width != actual.width:
        raise ValueError(
            f"memory widths differ: {expected.width} vs {actual.width}"
        )
    if expected.depth != actual.depth:
        raise ValueError(
            f"memory depths differ: {expected.depth} vs {actual.depth}"
        )
    mismatches: List[MemoryMismatch] = []
    for address, (want, got) in enumerate(zip(expected, actual)):
        if want != got:
            mismatches.append(MemoryMismatch(address, want, got))
            if limit is not None and len(mismatches) >= limit:
                break
    return mismatches
