"""Fixed-width, two's-complement bit vectors.

Every value travelling through the simulated datapaths is a
:class:`BitVector`: an immutable, fixed-width binary word.  Arithmetic wraps
modulo ``2**width`` exactly as hardware adders/multipliers do, and division
follows the truncate-toward-zero convention of Java and C (the paper's
compiler input language is Java), *not* Python's floor division.

The class is deliberately small and allocation-light: the simulator creates
millions of these while simulating an image-sized workload.
"""

from __future__ import annotations

from typing import Iterator, Tuple

__all__ = ["BitVector", "bv"]


class BitVector:
    """An immutable fixed-width binary word.

    The stored representation is always the unsigned value in
    ``[0, 2**width)``.  Signed interpretation is available through
    :attr:`signed` and the ``*_signed`` operations.
    """

    __slots__ = ("_value", "_width")

    def __init__(self, value: int, width: int) -> None:
        if width <= 0:
            raise ValueError(f"BitVector width must be positive, got {width}")
        self._width = width
        self._value = value & ((1 << width) - 1)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_signed(cls, value: int, width: int) -> "BitVector":
        """Build from a signed integer; the value is wrapped into range."""
        return cls(value, width)

    @classmethod
    def zeros(cls, width: int) -> "BitVector":
        return cls(0, width)

    @classmethod
    def ones(cls, width: int) -> "BitVector":
        return cls(-1, width)

    @classmethod
    def from_bits(cls, bits: "list[int]") -> "BitVector":
        """Build from a list of bits, index 0 being the LSB."""
        if not bits:
            raise ValueError("cannot build a BitVector from an empty bit list")
        value = 0
        for i, bit in enumerate(bits):
            if bit not in (0, 1):
                raise ValueError(f"bit {i} is {bit!r}, expected 0 or 1")
            value |= bit << i
        return cls(value, len(bits))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        return self._width

    @property
    def unsigned(self) -> int:
        """The value interpreted as an unsigned integer."""
        return self._value

    @property
    def signed(self) -> int:
        """The value interpreted as a two's-complement signed integer."""
        sign_bit = 1 << (self._width - 1)
        if self._value & sign_bit:
            return self._value - (1 << self._width)
        return self._value

    @property
    def msb(self) -> int:
        return (self._value >> (self._width - 1)) & 1

    @property
    def lsb(self) -> int:
        return self._value & 1

    def bit(self, index: int) -> int:
        """The bit at *index* (0 = LSB)."""
        if not 0 <= index < self._width:
            raise IndexError(f"bit index {index} out of range for width {self._width}")
        return (self._value >> index) & 1

    def bits(self) -> Iterator[int]:
        """Iterate bits from LSB to MSB."""
        for i in range(self._width):
            yield (self._value >> i) & 1

    def __bool__(self) -> bool:
        return self._value != 0

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __len__(self) -> int:
        return self._width

    def __hash__(self) -> int:
        return hash((self._value, self._width))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitVector):
            return self._value == other._value and self._width == other._width
        if isinstance(other, int):
            return self._value == (other & ((1 << self._width) - 1))
        return NotImplemented

    def __repr__(self) -> str:
        return f"BitVector(0x{self._value:x}, width={self._width})"

    def __str__(self) -> str:
        digits = (self._width + 3) // 4
        return f"{self._width}'h{self._value:0{digits}x}"

    # ------------------------------------------------------------------
    # Width manipulation
    # ------------------------------------------------------------------
    def zero_extend(self, width: int) -> "BitVector":
        if width < self._width:
            raise ValueError(f"cannot zero-extend width {self._width} to {width}")
        return BitVector(self._value, width)

    def sign_extend(self, width: int) -> "BitVector":
        if width < self._width:
            raise ValueError(f"cannot sign-extend width {self._width} to {width}")
        return BitVector(self.signed, width)

    def truncate(self, width: int) -> "BitVector":
        if width > self._width:
            raise ValueError(f"cannot truncate width {self._width} to {width}")
        return BitVector(self._value, width)

    def resize(self, width: int, signed: bool = True) -> "BitVector":
        """Resize to *width*, extending (sign- or zero-) or truncating."""
        if width == self._width:
            return self
        if width < self._width:
            return self.truncate(width)
        return self.sign_extend(width) if signed else self.zero_extend(width)

    def slice(self, high: int, low: int) -> "BitVector":
        """Bits ``[high:low]`` inclusive, Verilog style."""
        if not 0 <= low <= high < self._width:
            raise ValueError(
                f"slice [{high}:{low}] out of range for width {self._width}"
            )
        width = high - low + 1
        return BitVector(self._value >> low, width)

    def concat(self, other: "BitVector") -> "BitVector":
        """``{self, other}`` — *self* becomes the high part."""
        return BitVector(
            (self._value << other._width) | other._value,
            self._width + other._width,
        )

    # ------------------------------------------------------------------
    # Arithmetic (wrapping, same-width operands)
    # ------------------------------------------------------------------
    def _check_width(self, other: "BitVector") -> None:
        if self._width != other._width:
            raise ValueError(
                f"width mismatch: {self._width} vs {other._width}"
            )

    def __add__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._value + other._value, self._width)

    def __sub__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._value - other._value, self._width)

    def __mul__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._value * other._value, self._width)

    def __neg__(self) -> "BitVector":
        return BitVector(-self._value, self._width)

    def div_signed(self, other: "BitVector") -> "BitVector":
        """Signed division truncating toward zero (Java/C semantics)."""
        self._check_width(other)
        if other._value == 0:
            raise ZeroDivisionError("BitVector division by zero")
        a, b = self.signed, other.signed
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return BitVector(q, self._width)

    def rem_signed(self, other: "BitVector") -> "BitVector":
        """Signed remainder; sign follows the dividend (Java/C semantics)."""
        self._check_width(other)
        if other._value == 0:
            raise ZeroDivisionError("BitVector remainder by zero")
        a, b = self.signed, other.signed
        r = abs(a) % abs(b)
        if a < 0:
            r = -r
        return BitVector(r, self._width)

    def div_unsigned(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        if other._value == 0:
            raise ZeroDivisionError("BitVector division by zero")
        return BitVector(self._value // other._value, self._width)

    def rem_unsigned(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        if other._value == 0:
            raise ZeroDivisionError("BitVector remainder by zero")
        return BitVector(self._value % other._value, self._width)

    def mul_full(self, other: "BitVector") -> "BitVector":
        """Full-precision signed product, ``2*width`` bits wide."""
        self._check_width(other)
        return BitVector(self.signed * other.signed, 2 * self._width)

    def add_carry(self, other: "BitVector", carry_in: int = 0) -> Tuple["BitVector", int]:
        """Sum and carry-out of an unsigned addition."""
        self._check_width(other)
        total = self._value + other._value + (carry_in & 1)
        return BitVector(total, self._width), (total >> self._width) & 1

    def abs_signed(self) -> "BitVector":
        return BitVector(abs(self.signed), self._width)

    # ------------------------------------------------------------------
    # Bitwise
    # ------------------------------------------------------------------
    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._value & other._value, self._width)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._value | other._value, self._width)

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._value ^ other._value, self._width)

    def __invert__(self) -> "BitVector":
        return BitVector(~self._value, self._width)

    # ------------------------------------------------------------------
    # Shifts.  The shift amount is taken modulo nothing: amounts >= width
    # shift everything out (logical) or saturate to the sign (arithmetic),
    # matching a barrel shifter fed the full amount.
    # ------------------------------------------------------------------
    def shift_left(self, amount: int) -> "BitVector":
        if amount < 0:
            raise ValueError("shift amount must be non-negative")
        if amount >= self._width:
            return BitVector(0, self._width)
        return BitVector(self._value << amount, self._width)

    def shift_right_logical(self, amount: int) -> "BitVector":
        if amount < 0:
            raise ValueError("shift amount must be non-negative")
        if amount >= self._width:
            return BitVector(0, self._width)
        return BitVector(self._value >> amount, self._width)

    def shift_right_arith(self, amount: int) -> "BitVector":
        if amount < 0:
            raise ValueError("shift amount must be non-negative")
        if amount >= self._width:
            amount = self._width - 1 if self.msb else self._width
        return BitVector(self.signed >> amount, self._width)

    # ------------------------------------------------------------------
    # Comparisons (return plain ints 0/1, the width-1 status a comparator
    # feeds to the FSM)
    # ------------------------------------------------------------------
    def eq(self, other: "BitVector") -> int:
        self._check_width(other)
        return int(self._value == other._value)

    def ne(self, other: "BitVector") -> int:
        return 1 - self.eq(other)

    def lt_signed(self, other: "BitVector") -> int:
        self._check_width(other)
        return int(self.signed < other.signed)

    def le_signed(self, other: "BitVector") -> int:
        self._check_width(other)
        return int(self.signed <= other.signed)

    def gt_signed(self, other: "BitVector") -> int:
        self._check_width(other)
        return int(self.signed > other.signed)

    def ge_signed(self, other: "BitVector") -> int:
        self._check_width(other)
        return int(self.signed >= other.signed)

    def lt_unsigned(self, other: "BitVector") -> int:
        self._check_width(other)
        return int(self._value < other._value)

    def ge_unsigned(self, other: "BitVector") -> int:
        self._check_width(other)
        return int(self._value >= other._value)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def popcount(self) -> int:
        return bin(self._value).count("1")

    def reduce_and(self) -> int:
        return int(self._value == (1 << self._width) - 1)

    def reduce_or(self) -> int:
        return int(self._value != 0)

    def reduce_xor(self) -> int:
        return self.popcount() & 1


def bv(value: int, width: int) -> BitVector:
    """Terse constructor used pervasively in tests and examples."""
    return BitVector(value, width)
