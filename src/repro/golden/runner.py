"""Golden execution: run the original algorithm on the same memories.

The paper verifies compiler output by "executing the Java input
algorithm" against the same memory/stimulus files and comparing contents
afterwards.  Here the original Python function runs against
:class:`MemView` wrappers over the same :class:`MemoryImage` objects the
simulated SRAMs use, with matching width semantics: loads sign- or
zero-extend according to the array's :class:`MemorySpec`, stores mask to
the memory width.
"""

from __future__ import annotations

import inspect
from typing import Callable, Mapping, Optional

from ..compiler.spec import MemorySpec
from ..util.files import MemoryImage

__all__ = ["MemView", "run_golden", "GoldenError"]


class GoldenError(Exception):
    """The golden execution could not be performed."""


class MemView:
    """Array façade over a :class:`MemoryImage` with hardware semantics."""

    def __init__(self, image: MemoryImage, signed: bool = True) -> None:
        self.image = image
        self.signed = signed

    def __len__(self) -> int:
        return self.image.depth

    def __getitem__(self, index: int) -> int:
        if self.signed:
            return self.image.read_signed(index)
        return self.image.read(index)

    def __setitem__(self, index: int, value: int) -> None:
        self.image.write(index, value)

    def __iter__(self):
        for index in range(len(self)):
            yield self[index]

    def __repr__(self) -> str:
        return f"MemView({self.image!r}, signed={self.signed})"


def run_golden(func: Callable,
               arrays: Mapping[str, MemorySpec],
               images: Mapping[str, MemoryImage],
               params: Optional[Mapping[str, int]] = None) -> None:
    """Execute *func* in software over *images* (mutated in place).

    Arguments are assembled from the function signature: array parameters
    become :class:`MemView` wrappers, scalar parameters take their value
    from *params* (or the signature default).
    """
    params = dict(params or {})
    try:
        signature = inspect.signature(func)
    except (TypeError, ValueError) as exc:
        raise GoldenError(f"cannot inspect {func!r}: {exc}") from None
    call_args = []
    for name, parameter in signature.parameters.items():
        if name in arrays:
            spec = arrays[name]
            try:
                image = images[name]
            except KeyError:
                raise GoldenError(
                    f"no memory image supplied for array {name!r}"
                ) from None
            if image.width != spec.width or image.depth != spec.depth:
                raise GoldenError(
                    f"array {name!r}: image is {image.width}x{image.depth}"
                    f", spec says {spec.width}x{spec.depth}"
                )
            call_args.append(MemView(image, signed=spec.signed))
        elif name in params:
            call_args.append(params[name])
        elif parameter.default is not inspect.Parameter.empty:
            call_args.append(parameter.default)
        else:
            raise GoldenError(
                f"parameter {name!r} has no array, value or default"
            )
    func(*call_args)
