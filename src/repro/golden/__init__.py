"""Golden (software) execution of the input algorithms."""

from .runner import GoldenError, MemView, run_golden

__all__ = ["run_golden", "MemView", "GoldenError"]
