"""Seeded random generator of restricted-Python programs.

The generator's contract is the foundation of the differential oracle:
every emitted program must be (a) accepted by the compiler frontend,
(b) terminating, and (c) free of golden/hardware semantic gaps that are
*not* compiler bugs.  The last point is the subtle one — the golden run
computes in unbounded Python integers while the datapath wraps modulo
``2**word_width`` — so generation is typed with a conservative interval
analysis: an operator application is only emitted when the result's
interval provably fits the signed machine word.  Array round-trips
(store masks, load sign-/zero-extends) re-anchor intervals, which is how
generated programs stay interesting without overflowing.

Safety rules encoded here:

* array indices are loop variables proven in range, small constants, or
  ``expr % depth`` (Python floor-mod of an in-range value is in
  ``[0, depth)`` and the hardware remainder unit implements the same
  semantics);
* ``//`` and ``%`` only get non-zero constant divisors;
* shift amounts are constants below the word width (the barrel shifter
  and Python agree there; at/above width they legitimately diverge);
* loop bounds are compile-time constants (``for``) or counted idioms
  (``while``), so every program halts;
* a variable is only referenced inside the scope that assigned it;
* accumulators — the one construct whose runtime value depends on the
  iteration number — are *pre-committed* when a loop is entered: the
  update's widened interval (the transfer function iterated over the
  full remaining trip count) is installed in the loop scope before any
  body statement is generated, so a use textually before the update
  still accounts for the value carried in from the previous iteration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..compiler.spec import MemorySpec
from ..util.files import MemoryImage
from .ir import (Assign, AugStore, Bin, BoolC, Cmp, Cond, Const, Expr, For,
                 FuzzProgram, If, Load, NotC, Store, Stmt, Un, Var, While,
                 referenced_arrays)

__all__ = ["GeneratorConfig", "ProgramGenerator", "generate", "make_images"]

Interval = Tuple[int, int]


@dataclass
class GeneratorConfig:
    """Size/shape knobs for one generation run."""

    max_top_statements: int = 5
    min_top_statements: int = 2
    max_block_statements: int = 3
    max_expr_depth: int = 3
    max_nesting: int = 2
    max_trip: int = 6
    min_arrays: int = 2
    max_arrays: int = 3
    min_depth: int = 6
    max_depth: int = 20
    widths: Sequence[int] = (8, 12, 16, 24, 32)
    max_params: int = 2
    word_width: int = 32
    #: probability of asking the compiler for two temporal partitions
    partition_probability: float = 0.2

    @property
    def safe(self) -> Interval:
        half = 1 << (self.word_width - 1)
        return (-half, half - 1)


# ----------------------------------------------------------------------
# Interval arithmetic (conservative, matching the operator semantics)
# ----------------------------------------------------------------------
def _bits_for(lo: int, hi: int) -> int:
    k = 1
    while lo < -(1 << (k - 1)) or hi > (1 << (k - 1)) - 1:
        k += 1
    return k


def _hull(*ivs: Interval) -> Interval:
    return (min(iv[0] for iv in ivs), max(iv[1] for iv in ivs))


def _iv_bin(op: str, a: Interval, b: Interval) -> Optional[Interval]:
    """Result interval of ``a op b``; None when not statically safe."""
    if op == "+":
        return (a[0] + b[0], a[1] + b[1])
    if op == "-":
        return (a[0] - b[1], a[1] - b[0])
    if op == "*":
        corners = [x * y for x in a for y in b]
        return (min(corners), max(corners))
    if op == "//":
        if b[0] == b[1] and b[0] != 0:
            corners = [a[0] // b[0], a[1] // b[0]]
            return (min(corners), max(corners))
        return None
    if op == "%":
        if b[0] == b[1] and b[0] > 0:
            return (0, b[0] - 1)
        return None
    if op == "<<":
        if b[0] == b[1] and b[0] >= 0:
            scale = 1 << b[0]
            return (a[0] * scale, a[1] * scale)
        return None
    if op == ">>":
        if b[0] == b[1] and b[0] >= 0:
            return (a[0] >> b[0], a[1] >> b[0])
        return None
    if op in ("&", "|", "^"):
        k = _bits_for(*_hull(a, b))
        return (-(1 << (k - 1)), (1 << (k - 1)) - 1)
    if op == "min":
        return (min(a[0], b[0]), min(a[1], b[1]))
    if op == "max":
        return (max(a[0], b[0]), max(a[1], b[1]))
    raise ValueError(f"unknown operator {op!r}")


def _iv_un(op: str, a: Interval) -> Interval:
    if op == "-":
        return (-a[1], -a[0])
    if op == "~":
        return (-a[1] - 1, -a[0] - 1)
    if op == "abs":
        lo = 0 if a[0] <= 0 <= a[1] else min(abs(a[0]), abs(a[1]))
        return (lo, max(abs(a[0]), abs(a[1])))
    raise ValueError(f"unknown unary operator {op!r}")


def _array_interval(spec: MemorySpec) -> Interval:
    if spec.signed:
        half = 1 << (spec.width - 1)
        return (-half, half - 1)
    return (0, (1 << spec.width) - 1)


def _iterate_interval(op: str, old: Interval, e: Interval,
                      trips: int) -> Optional[Interval]:
    """Union of ``v``'s interval over up to *trips* updates ``v = v op e``.

    Iterating the transfer function is sound for every operator —
    including ``*`` and ``<<``, where scaling ``old`` by a linear factor
    of *trips* (the classic additive-accumulator shortcut) would
    under-approximate the true exponential growth.
    """
    hull = old
    current = old
    for _ in range(trips):
        current = _iv_bin(op, current, e)
        if current is None:
            return None
        hull = _hull(hull, current)
        if hull[0] < -(1 << 63) or hull[1] > (1 << 63):
            return None  # diverging; stop before the ints get huge
    return hull


# ----------------------------------------------------------------------
# Generation environment
# ----------------------------------------------------------------------
@dataclass
class _VarInfo:
    interval: Interval
    #: product of enclosing loop trip counts when the variable was
    #: defined — accumulator widening iterates current_trip/def_trip
    #: update steps
    def_trip: int
    kind: str  # "local" | "loop" | "param"


@dataclass
class _Scope:
    vars: Dict[str, _VarInfo] = field(default_factory=dict)

    def child(self) -> "_Scope":
        # shallow copy on purpose: child scopes share _VarInfo objects,
        # so widening an accumulator in place (see _plan_accums) is
        # visible to every scope that can still reference the variable
        return _Scope(dict(self.vars))


_BIN_OPS = ("+", "-", "*", "//", "%", "<<", ">>", "&", "|", "^",
            "min", "max")
_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")
_ACCUM_OPS = ("+", "+", "-", "*", "<<", ">>", "min", "max", "&", "|", "^")


class ProgramGenerator:
    """One seeded generation run; ``generate()`` is the entry point."""

    def __init__(self, seed: int, config: Optional[GeneratorConfig] = None):
        self.seed = seed
        self.config = config or GeneratorConfig()
        self.rng = random.Random(seed)
        self._counter = 0

    # -- naming --------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    # -- program skeleton ----------------------------------------------
    def generate(self) -> FuzzProgram:
        cfg = self.config
        rng = self.rng

        arrays: Dict[str, MemorySpec] = {}
        n_arrays = rng.randint(cfg.min_arrays, cfg.max_arrays)
        names = ["src", "dst", "aux"][:n_arrays]
        for name in names:
            role = {"src": "input", "dst": "output"}.get(name, "data")
            width = rng.choice(list(cfg.widths))
            # a full-word unsigned load would exceed the signed machine
            # word the golden/hardware contract is defined over
            signed = rng.random() < 0.7 or width >= cfg.word_width
            arrays[name] = MemorySpec(
                width=width,
                depth=rng.randint(cfg.min_depth, cfg.max_depth),
                signed=signed,
                role=role,
            )
        self.arrays = arrays

        params: Dict[str, int] = {}
        for _ in range(rng.randint(0, cfg.max_params)):
            params[self._fresh("k")] = rng.randint(-8, 20)
        self.params = params

        scope = _Scope()
        for name, value in params.items():
            scope.vars[name] = _VarInfo((value, value), 1, "param")

        n_top = rng.randint(cfg.min_top_statements, cfg.max_top_statements)
        body = self._gen_block(scope, n_top, nesting=0, trip=1)

        if "dst" in arrays and "dst" not in referenced_arrays(body):
            body.append(Store("dst", self._gen_index(scope, "dst", 1),
                              self._gen_expr(scope, 1, 1)[0]))

        n_partitions = 1
        if len(body) >= 2 and rng.random() < cfg.partition_probability:
            n_partitions = 2

        return FuzzProgram(
            name=f"fuzz_{self.seed}",
            arrays=arrays,
            params=params,
            body=body,
            seed=self.seed,
            n_partitions=n_partitions,
            word_width=cfg.word_width,
        )

    # -- expressions ---------------------------------------------------
    def _leaf(self, scope: _Scope, trip: int) -> Tuple[Expr, Interval]:
        rng = self.rng
        choices = ["const", "const"]
        if scope.vars:
            choices += ["var"] * 3
        if self.arrays:
            choices += ["load"] * 3
        kind = rng.choice(choices)
        if kind == "var":
            name = rng.choice(sorted(scope.vars))
            return Var(name), scope.vars[name].interval
        if kind == "load":
            array = rng.choice(sorted(self.arrays))
            index = self._gen_index(scope, array, trip)
            return (Load(array, index),
                    _array_interval(self.arrays[array]))
        value = rng.choice((
            rng.randint(-4, 8), rng.randint(-64, 64),
            rng.randint(-(1 << 12), 1 << 12),
        ))
        return Const(value), (value, value)

    def _gen_expr(self, scope: _Scope, depth: int,
                  trip: int) -> Tuple[Expr, Interval]:
        rng = self.rng
        safe = self.config.safe
        if depth <= 0 or rng.random() < 0.3:
            return self._leaf(scope, trip)
        for _ in range(8):
            op = rng.choice(_BIN_OPS + ("neg", "abs", "inv"))
            if op in ("neg", "abs", "inv"):
                a, iva = self._gen_expr(scope, depth - 1, trip)
                uop = {"neg": "-", "abs": "abs", "inv": "~"}[op]
                result = _iv_un(uop, iva)
                if safe[0] <= result[0] and result[1] <= safe[1]:
                    return Un(uop, a), result
                continue
            a, iva = self._gen_expr(scope, depth - 1, trip)
            if op in ("//", "%"):
                divisor = rng.choice((2, 3, 4, 5, 7, 8, 16, -2, -3))
                if op == "%" and divisor < 0:
                    divisor = -divisor
                b, ivb = Const(divisor), (divisor, divisor)
            elif op in ("<<", ">>"):
                amount = rng.randint(0, 12)
                b, ivb = Const(amount), (amount, amount)
            else:
                b, ivb = self._gen_expr(scope, depth - 1, trip)
            result = _iv_bin(op, iva, ivb)
            if result is not None and safe[0] <= result[0] \
                    and result[1] <= safe[1]:
                return Bin(op, a, b), result
        return self._leaf(scope, trip)

    def _gen_index(self, scope: _Scope, array: str, trip: int) -> Expr:
        """An index provably in ``[0, depth)`` for golden and hardware."""
        rng = self.rng
        depth = self.arrays[array].depth
        usable = [n for n, i in scope.vars.items()
                  if i.kind == "loop" and 0 <= i.interval[0]
                  and i.interval[1] < depth]
        roll = rng.random()
        if usable and roll < 0.5:
            return Var(rng.choice(sorted(usable)))
        if roll < 0.8:
            e, _ = self._gen_expr(scope, 1, trip)
            return Bin("%", e, Const(depth))
        return Const(rng.randrange(depth))

    def _gen_cond(self, scope: _Scope, depth: int, trip: int) -> Cond:
        rng = self.rng
        roll = rng.random()
        if depth > 0 and roll < 0.2:
            parts = [self._gen_cond(scope, depth - 1, trip)
                     for _ in range(rng.randint(2, 3))]
            return BoolC(rng.choice(("and", "or")), parts)
        if depth > 0 and roll < 0.3:
            return NotC(self._gen_cond(scope, depth - 1, trip))
        a, _ = self._gen_expr(scope, min(depth, 2), trip)
        b, _ = self._gen_expr(scope, min(depth, 2), trip)
        return Cmp(rng.choice(_CMP_OPS), a, b)

    # -- statements ----------------------------------------------------
    def _gen_block(self, scope: _Scope, n: int, nesting: int,
                   trip: int) -> List[Stmt]:
        stmts: List[Stmt] = []
        for _ in range(n):
            stmts.append(self._gen_stmt(scope, nesting, trip))
        return stmts

    def _gen_stmt(self, scope: _Scope, nesting: int, trip: int) -> Stmt:
        cfg = self.config
        rng = self.rng
        choices = ["assign"] * 3 + ["store"] * 3 + ["augstore"]
        if nesting < cfg.max_nesting:
            choices += ["if"] * 2 + ["for"] * 2 + ["while"]
        kind = rng.choice(choices)

        if kind == "assign":
            expr, interval = self._gen_expr(scope, cfg.max_expr_depth, trip)
            name = self._fresh("t")
            scope.vars[name] = _VarInfo(interval, trip, "local")
            return Assign(name, expr)

        if kind == "store":
            array = rng.choice(sorted(self.arrays))
            return Store(array, self._gen_index(scope, array, trip),
                         self._gen_expr(scope, cfg.max_expr_depth, trip)[0])

        if kind == "augstore":
            array = rng.choice(sorted(self.arrays))
            spec = self.arrays[array]
            # loaded element op value must stay safe; keep value small
            value, iv = self._gen_expr(scope, 1, trip)
            op = rng.choice(("+", "-", "^", "&", "|"))
            loaded = _array_interval(spec)
            result = _iv_bin(op, loaded, iv)
            safe = cfg.safe
            if result is None or result[0] < safe[0] or result[1] > safe[1]:
                value, op = Const(1), "^"
            return AugStore(array, self._gen_index(scope, array, trip),
                            op, value)

        if kind == "if":
            cond = self._gen_cond(scope, 2, trip)
            then = self._gen_block(scope.child(),
                                   rng.randint(1, cfg.max_block_statements),
                                   nesting + 1, trip)
            orelse = []
            if rng.random() < 0.5:
                orelse = self._gen_block(
                    scope.child(), rng.randint(1, cfg.max_block_statements),
                    nesting + 1, trip)
            return If(cond, then, orelse)

        if kind == "for":
            var = self._fresh("i")
            start = rng.randint(0, 3)
            trips = rng.randint(1, cfg.max_trip)
            step = rng.choice((1, 1, 1, 2))
            stop = start + trips * step
            stop_param = None
            if step == 1 and start == 0 and rng.random() < 0.25:
                fits = [k for k, v in self.params.items()
                        if 1 <= v <= cfg.max_trip]
                if fits:
                    stop_param = rng.choice(fits)
                    stop = self.params[stop_param]
                    trips = stop
            child = scope.child()
            last = start + (trips - 1) * step
            child.vars[var] = _VarInfo((start, last), trip * trips, "loop")
            accums = self._plan_accums(child, trip, trips)
            body = self._gen_block(child,
                                   rng.randint(1, cfg.max_block_statements),
                                   nesting + 1, trip * trips)
            self._weave(body, accums)
            return For(var, start, stop, step, body, stop_param)

        # while (counted)
        var = self._fresh("w")
        limit = rng.randint(1, cfg.max_trip)
        child = scope.child()
        child.vars[var] = _VarInfo((0, limit), trip * limit, "loop")
        accums = self._plan_accums(child, trip, limit)
        body = self._gen_block(child,
                               rng.randint(1, cfg.max_block_statements),
                               nesting + 1, trip * limit)
        self._weave(body, accums)
        return While(var, limit, body)

    def _plan_accums(self, scope: _Scope, trip: int,
                     trips: int) -> List[Stmt]:
        """Pre-commit accumulator updates for the loop body about to be
        generated.

        An accumulator's runtime value depends on the iteration number,
        so its widened interval must be in *scope* before any body
        statement exists: a use textually before the update still sees
        the value accumulated by the previous iteration.  Two rules keep
        this sound against uses the generator has *already* emitted:

        * only variables defined at the trip level of the block that
          contains this loop (``def_trip == trip``) are eligible — their
          definition re-executes, and so re-anchors the interval, on
          every iteration of any enclosing loop, so no earlier-emitted
          use can observe an accumulated value;
        * the :class:`_VarInfo` is widened in place, so every scope
          sharing the variable (including blocks generated after this
          loop) sees the widened interval.

        Widening iterates the transfer function once per trip of this
        loop, which is exact for constant trip counts and — unlike a
        linear ``old * trips`` factor — sound for ``*`` and ``<<``.
        """
        rng = self.rng
        safe = self.config.safe
        targets = sorted(n for n, i in scope.vars.items()
                         if i.kind == "local" and i.def_trip == trip)
        if not targets or trips < 2 or rng.random() < 0.4:
            return []
        sampled = rng.sample(targets,
                             min(len(targets), rng.choice((1, 1, 2))))
        # update operands may not read any accumulator of this loop: the
        # operand's interval must hold at every iteration, and a not-yet-
        # widened sibling target would poison the fixpoint
        outer = _Scope({n: v for n, v in scope.vars.items()
                        if n not in sampled})
        planned: List[Stmt] = []
        for name in sampled:
            info = scope.vars[name]
            chosen = None
            for _ in range(8):
                op = rng.choice(_ACCUM_OPS)
                if op in ("<<", ">>"):
                    amount = rng.randint(1, 3)
                    e, ive = Const(amount), (amount, amount)
                else:
                    e, ive = self._gen_expr(outer, 2, trip * trips)
                widened = _iterate_interval(op, info.interval, ive, trips)
                if widened is not None and safe[0] <= widened[0] \
                        and widened[1] <= safe[1]:
                    chosen = (op, e, widened)
                    break
            if chosen is None:
                chosen = ("^", Const(1),
                          _iterate_interval("^", info.interval, (1, 1),
                                            trips))
            op, e, widened = chosen
            info.interval = widened
            planned.append(Assign(name, Bin(op, Var(name), e)))
        return planned

    def _weave(self, body: List[Stmt], accums: List[Stmt]) -> None:
        """Insert the planned updates at random positions; the widened
        interval covers the carried value at every point in the body, so
        any placement is sound."""
        for stmt in accums:
            body.insert(self.rng.randrange(len(body) + 1), stmt)


# ----------------------------------------------------------------------
# Module-level conveniences
# ----------------------------------------------------------------------
def generate(seed: int,
             config: Optional[GeneratorConfig] = None) -> FuzzProgram:
    """Generate the program for *seed* (deterministic per seed+config)."""
    return ProgramGenerator(seed, config).generate()


def make_images(program: FuzzProgram,
                input_seed: int = 0) -> Dict[str, MemoryImage]:
    """Deterministic initial memory contents for every program array.

    Input-role arrays get seeded random words; everything else starts
    zeroed, exactly like the platform RAMs before a run.
    """
    images: Dict[str, MemoryImage] = {}
    for name, spec in program.arrays.items():
        image = MemoryImage(spec.width, spec.depth, name=name)
        if spec.role == "input":
            rng = random.Random(f"{input_seed}:{name}")
            for address in range(spec.depth):
                image.write(address, rng.randrange(1 << spec.width))
        images[name] = image
    return images
