"""A tiny mutable IR for fuzzer-generated programs.

The generator does not emit source text directly: it builds programs out
of the small node algebra below, and the renderer turns a tree into the
restricted-Python source the compiler frontend accepts.  Keeping the
tree around (rather than only text) is what makes the delta-debugging
minimizer tractable — reductions are tree edits (drop a statement,
unwrap a loop, replace an expression by a constant) that can never
produce syntactically broken candidates.

The node set mirrors the frontend subset one-to-one (see
``repro.compiler.frontend``): integer expressions, conditions, scalar
assignment, array load/store, ``for``/``while``/``if``.  ``While`` is a
*counted* loop — it renders as an init/test/increment idiom — so every
generated program provably terminates.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..compiler.spec import MemorySpec

__all__ = [
    "Const", "Var", "Load", "Bin", "Un", "Expr",
    "Cmp", "BoolC", "NotC", "Cond",
    "Assign", "Store", "AugStore", "If", "For", "While", "Stmt",
    "FuzzProgram", "render_body", "subst_var", "iter_stmts",
    "referenced_arrays", "referenced_names",
]


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class Const:
    value: int


@dataclass
class Var:
    name: str


@dataclass
class Load:
    array: str
    index: "Expr"


@dataclass
class Bin:
    """Binary operator; ``op`` is one of the frontend's integer operators
    (``+ - * // % << >> & | ^``) or the ``min``/``max`` intrinsics."""

    op: str
    a: "Expr"
    b: "Expr"


@dataclass
class Un:
    """Unary operator: ``-``, ``~`` or the ``abs`` intrinsic."""

    op: str
    a: "Expr"


Expr = Union[Const, Var, Load, Bin, Un]


# ----------------------------------------------------------------------
# Conditions
# ----------------------------------------------------------------------
@dataclass
class Cmp:
    op: str  # < <= > >= == !=
    a: Expr
    b: Expr


@dataclass
class BoolC:
    op: str  # and / or
    parts: List["Cond"]


@dataclass
class NotC:
    part: "Cond"


Cond = Union[Cmp, BoolC, NotC]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class Assign:
    name: str
    value: Expr


@dataclass
class Store:
    array: str
    index: Expr
    value: Expr


@dataclass
class AugStore:
    """``array[index] op= value`` — exercises the frontend's augmented
    subscript path (load + op + store through one memory port pair)."""

    array: str
    index: Expr
    op: str
    value: Expr


@dataclass
class If:
    cond: Cond
    then: List["Stmt"] = field(default_factory=list)
    orelse: List["Stmt"] = field(default_factory=list)


@dataclass
class For:
    """``for var in range(start, stop, step)`` with constant bounds.

    ``stop_param`` optionally names a scalar parameter whose value equals
    ``stop``; when set the rendered range uses the parameter name, which
    the frontend specialises back into the same constant.
    """

    var: str
    start: int
    stop: int
    step: int
    body: List["Stmt"] = field(default_factory=list)
    stop_param: Optional[str] = None


@dataclass
class While:
    """Counted while loop; renders as::

        var = 0
        while var < limit:
            <body>
            var = var + 1
    """

    var: str
    limit: int
    body: List["Stmt"] = field(default_factory=list)


Stmt = Union[Assign, Store, AugStore, If, For, While]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
_CALL_OPS = ("min", "max")


def _render_expr(e: Expr) -> str:
    if isinstance(e, Const):
        return str(e.value) if e.value >= 0 else f"({e.value})"
    if isinstance(e, Var):
        return e.name
    if isinstance(e, Load):
        return f"{e.array}[{_render_expr(e.index)}]"
    if isinstance(e, Bin):
        if e.op in _CALL_OPS:
            return f"{e.op}({_render_expr(e.a)}, {_render_expr(e.b)})"
        return f"({_render_expr(e.a)} {e.op} {_render_expr(e.b)})"
    if isinstance(e, Un):
        if e.op == "abs":
            return f"abs({_render_expr(e.a)})"
        return f"({e.op}{_render_expr(e.a)})"
    raise TypeError(f"not an expression node: {e!r}")


def _render_cond(c: Cond) -> str:
    if isinstance(c, Cmp):
        return f"({_render_expr(c.a)} {c.op} {_render_expr(c.b)})"
    if isinstance(c, BoolC):
        return "(" + f" {c.op} ".join(_render_cond(p) for p in c.parts) + ")"
    if isinstance(c, NotC):
        return f"(not {_render_cond(c.part)})"
    raise TypeError(f"not a condition node: {c!r}")


def _render_stmt(s: Stmt, indent: str, out: List[str]) -> None:
    if isinstance(s, Assign):
        out.append(f"{indent}{s.name} = {_render_expr(s.value)}")
    elif isinstance(s, Store):
        out.append(f"{indent}{s.array}[{_render_expr(s.index)}] = "
                   f"{_render_expr(s.value)}")
    elif isinstance(s, AugStore):
        out.append(f"{indent}{s.array}[{_render_expr(s.index)}] {s.op}= "
                   f"{_render_expr(s.value)}")
    elif isinstance(s, If):
        out.append(f"{indent}if {_render_cond(s.cond)}:")
        _render_block(s.then, indent + "    ", out)
        if s.orelse:
            out.append(f"{indent}else:")
            _render_block(s.orelse, indent + "    ", out)
    elif isinstance(s, For):
        stop = s.stop_param if s.stop_param is not None else str(s.stop)
        if s.step == 1:
            rng = f"range({s.start}, {stop})"
        else:
            rng = f"range({s.start}, {stop}, {s.step})"
        out.append(f"{indent}for {s.var} in {rng}:")
        _render_block(s.body, indent + "    ", out)
    elif isinstance(s, While):
        out.append(f"{indent}{s.var} = 0")
        out.append(f"{indent}while {s.var} < {s.limit}:")
        inner = indent + "    "
        _render_block(s.body, inner, out, allow_empty=True)
        out.append(f"{inner}{s.var} = {s.var} + 1")
    else:
        raise TypeError(f"not a statement node: {s!r}")


def _render_block(stmts: List[Stmt], indent: str, out: List[str],
                  allow_empty: bool = False) -> None:
    if not stmts and not allow_empty:
        out.append(f"{indent}pass")
        return
    for s in stmts:
        _render_stmt(s, indent, out)


def render_body(body: List[Stmt], indent: str = "    ") -> str:
    out: List[str] = []
    _render_block(body, indent, out)
    return "\n".join(out)


# ----------------------------------------------------------------------
# Traversal / substitution helpers (used by the minimizer)
# ----------------------------------------------------------------------
def subst_var(node, name: str, replacement: Expr):
    """Return *node* with every ``Var(name)`` replaced (recursively)."""
    if isinstance(node, Var):
        return copy.deepcopy(replacement) if node.name == name else node
    if isinstance(node, Const):
        return node
    if isinstance(node, Load):
        return Load(node.array, subst_var(node.index, name, replacement))
    if isinstance(node, Bin):
        return Bin(node.op, subst_var(node.a, name, replacement),
                   subst_var(node.b, name, replacement))
    if isinstance(node, Un):
        return Un(node.op, subst_var(node.a, name, replacement))
    if isinstance(node, Cmp):
        return Cmp(node.op, subst_var(node.a, name, replacement),
                   subst_var(node.b, name, replacement))
    if isinstance(node, BoolC):
        return BoolC(node.op,
                     [subst_var(p, name, replacement) for p in node.parts])
    if isinstance(node, NotC):
        return NotC(subst_var(node.part, name, replacement))
    if isinstance(node, Assign):
        return Assign(node.name, subst_var(node.value, name, replacement))
    if isinstance(node, Store):
        return Store(node.array, subst_var(node.index, name, replacement),
                     subst_var(node.value, name, replacement))
    if isinstance(node, AugStore):
        return AugStore(node.array,
                        subst_var(node.index, name, replacement), node.op,
                        subst_var(node.value, name, replacement))
    if isinstance(node, If):
        return If(subst_var(node.cond, name, replacement),
                  [subst_var(s, name, replacement) for s in node.then],
                  [subst_var(s, name, replacement) for s in node.orelse])
    if isinstance(node, For):
        return For(node.var, node.start, node.stop, node.step,
                   [subst_var(s, name, replacement) for s in node.body],
                   node.stop_param)
    if isinstance(node, While):
        return While(node.var, node.limit,
                     [subst_var(s, name, replacement) for s in node.body])
    raise TypeError(f"cannot substitute in {node!r}")


def iter_stmts(body: List[Stmt]) -> Iterator[Stmt]:
    """Yield every statement in *body*, depth first."""
    for s in body:
        yield s
        if isinstance(s, If):
            yield from iter_stmts(s.then)
            yield from iter_stmts(s.orelse)
        elif isinstance(s, (For, While)):
            yield from iter_stmts(s.body)


def _iter_exprs(node) -> Iterator[Expr]:
    if isinstance(node, (Const, Var)):
        yield node
    elif isinstance(node, Load):
        yield node
        yield from _iter_exprs(node.index)
    elif isinstance(node, Bin):
        yield node
        yield from _iter_exprs(node.a)
        yield from _iter_exprs(node.b)
    elif isinstance(node, Un):
        yield node
        yield from _iter_exprs(node.a)
    elif isinstance(node, Cmp):
        yield from _iter_exprs(node.a)
        yield from _iter_exprs(node.b)
    elif isinstance(node, BoolC):
        for p in node.parts:
            yield from _iter_exprs(p)
    elif isinstance(node, NotC):
        yield from _iter_exprs(node.part)


def _stmt_exprs(s: Stmt) -> Iterator[Expr]:
    if isinstance(s, Assign):
        yield from _iter_exprs(s.value)
    elif isinstance(s, (Store, AugStore)):
        yield from _iter_exprs(s.index)
        yield from _iter_exprs(s.value)
    elif isinstance(s, If):
        yield from _iter_exprs(s.cond)


def referenced_arrays(body: List[Stmt]) -> set:
    """Names of arrays loaded from or stored to anywhere in *body*."""
    names = set()
    for s in iter_stmts(body):
        if isinstance(s, (Store, AugStore)):
            names.add(s.array)
        for e in _stmt_exprs(s):
            if isinstance(e, Load):
                names.add(e.array)
    return names


def referenced_names(body: List[Stmt]) -> set:
    """All scalar names read anywhere in *body* (params included)."""
    names = set()
    for s in iter_stmts(body):
        for e in _stmt_exprs(s):
            if isinstance(e, Var):
                names.add(e.name)
        if isinstance(s, For) and s.stop_param is not None:
            names.add(s.stop_param)
    return names


# ----------------------------------------------------------------------
# The program container
# ----------------------------------------------------------------------
@dataclass
class FuzzProgram:
    """One generated (or corpus-loaded) test program.

    Carries everything the differential harness needs: the function
    source (rendered from ``body``, or verbatim for corpus entries that
    only store text), the memory specs, the specialised scalar
    parameters and the compile options that apply.
    """

    name: str
    arrays: Dict[str, MemorySpec]
    params: Dict[str, int] = field(default_factory=dict)
    body: Optional[List[Stmt]] = None
    seed: Optional[int] = None
    n_partitions: int = 1
    word_width: int = 32
    #: verbatim source for corpus entries loaded without a tree
    raw_source: Optional[str] = None

    @property
    def source(self) -> str:
        if self.body is None:
            if self.raw_source is None:
                raise ValueError("program has neither a body nor raw source")
            return self.raw_source
        args = list(self.arrays) + list(self.params)
        header = f"def {self.name}({', '.join(args)}):"
        return header + "\n" + render_body(self.body) + "\n"

    def func(self):
        """Exec the source and return the plain-Python callable (the
        golden reference the compiled design is checked against)."""
        namespace: Dict[str, object] = {}
        code = compile(self.source, f"<fuzz:{self.name}>", "exec")
        exec(code, namespace)  # noqa: S102 - the fuzzer's own program
        return namespace[self.name]

    def clone(self) -> "FuzzProgram":
        return copy.deepcopy(self)

    def signature_names(self) -> Tuple[str, ...]:
        return tuple(self.arrays) + tuple(self.params)
