"""Corpus files: minimized reproducers as self-describing Python files.

Every failure the fuzzer finds (and every regression lock worth keeping)
is stored as one ``.py`` file in ``fuzz/corpus/``: a structured comment
header carrying the metadata the harness needs — memory specs, scalar
parameters, compile options, the recorded classification — followed by
the program source itself.  The files are deliberately human-readable:
triaging a CI fuzz failure starts with reading the reproducer.

Header grammar (one directive per line, ``# key: value``)::

    # repro-fuzz: 1                     format version
    # kind: mismatch                    recorded classification
    # backend: compiled                 (optional) backend that diverged
    # exc-type: CompileError            (optional) crash exception type
    # seed: 12345                       generator seed (provenance)
    # input-seed: 0                     stimulus seed
    # n-partitions: 1
    # word-width: 32
    # array: src width=16 depth=8 signed=1 role=input
    # param: k1 = 3
    # xfail: tracking note              (optional) known-open divergence
    # detail: first mismatch line       free text, informational

The regression suite replays every corpus file through all backends:
entries without ``xfail`` must pass (the bug they locked is fixed);
``xfail`` entries are expected to still fail with their recorded kind.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..compiler.spec import MemorySpec
from .harness import Outcome
from .ir import FuzzProgram

__all__ = ["CorpusEntry", "save_entry", "load_entry", "load_corpus",
           "entry_filename"]

_FORMAT_VERSION = 1


@dataclass
class CorpusEntry:
    """One reproducer: the program plus its recorded classification."""

    program: FuzzProgram
    kind: str
    backend: Optional[str] = None
    exc_type: Optional[str] = None
    input_seed: int = 0
    detail: str = ""
    xfail: Optional[str] = None
    path: Optional[Path] = None

    @property
    def outcome(self) -> Outcome:
        return Outcome(self.kind, backend=self.backend, detail=self.detail,
                       exc_type=self.exc_type)


def entry_filename(entry: CorpusEntry) -> str:
    seed = entry.program.seed if entry.program.seed is not None else 0
    return f"{entry.kind.replace('-', '_')}_s{seed}.py"


def save_entry(entry: CorpusEntry,
               directory: Union[str, Path]) -> Path:
    """Write *entry* into *directory*; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    program = entry.program
    lines: List[str] = [
        f"# repro-fuzz: {_FORMAT_VERSION}",
        f"# kind: {entry.kind}",
    ]
    if entry.backend:
        lines.append(f"# backend: {entry.backend}")
    if entry.exc_type:
        lines.append(f"# exc-type: {entry.exc_type}")
    if program.seed is not None:
        lines.append(f"# seed: {program.seed}")
    lines.append(f"# input-seed: {entry.input_seed}")
    lines.append(f"# n-partitions: {program.n_partitions}")
    lines.append(f"# word-width: {program.word_width}")
    for name, spec in program.arrays.items():
        lines.append(
            f"# array: {name} width={spec.width} depth={spec.depth} "
            f"signed={int(spec.signed)} role={spec.role}"
        )
    for name, value in program.params.items():
        lines.append(f"# param: {name} = {value}")
    if entry.xfail:
        lines.append(f"# xfail: {entry.xfail}")
    if entry.detail:
        first = entry.detail.strip().splitlines()[0]
        lines.append(f"# detail: {first}")
    text = "\n".join(lines) + "\n" + program.source.rstrip() + "\n"
    path = directory / entry_filename(entry)
    path.write_text(text)
    return path


_ARRAY_RE = re.compile(
    r"(?P<name>\w+)\s+width=(?P<width>\d+)\s+depth=(?P<depth>\d+)\s+"
    r"signed=(?P<signed>[01])\s+role=(?P<role>\w+)"
)
_PARAM_RE = re.compile(r"(?P<name>\w+)\s*=\s*(?P<value>-?\d+)")


class CorpusFormatError(ValueError):
    """A corpus file's header could not be parsed."""


def load_entry(path: Union[str, Path]) -> CorpusEntry:
    """Parse one corpus file back into a :class:`CorpusEntry`."""
    path = Path(path)
    header: Dict[str, str] = {}
    arrays: Dict[str, MemorySpec] = {}
    params: Dict[str, int] = {}
    source_lines: List[str] = []
    for line in path.read_text().splitlines():
        if line.startswith("#"):
            body = line[1:].strip()
            if ":" not in body:
                continue
            key, _, value = body.partition(":")
            key = key.strip()
            value = value.strip()
            if key == "array":
                match = _ARRAY_RE.fullmatch(value)
                if not match:
                    raise CorpusFormatError(
                        f"{path}: bad array directive {value!r}")
                arrays[match["name"]] = MemorySpec(
                    width=int(match["width"]), depth=int(match["depth"]),
                    signed=bool(int(match["signed"])), role=match["role"],
                )
            elif key == "param":
                match = _PARAM_RE.fullmatch(value)
                if not match:
                    raise CorpusFormatError(
                        f"{path}: bad param directive {value!r}")
                params[match["name"]] = int(match["value"])
            else:
                header[key] = value
        elif line.strip() or source_lines:
            source_lines.append(line)
    if "repro-fuzz" not in header:
        raise CorpusFormatError(f"{path}: missing 'repro-fuzz' header")
    if "kind" not in header:
        raise CorpusFormatError(f"{path}: missing 'kind' header")
    if not arrays:
        raise CorpusFormatError(f"{path}: no array directives")
    source = "\n".join(source_lines).rstrip() + "\n"
    name_match = re.search(r"^def\s+(\w+)\s*\(", source, re.MULTILINE)
    if not name_match:
        raise CorpusFormatError(f"{path}: no function definition found")
    program = FuzzProgram(
        name=name_match.group(1),
        arrays=arrays,
        params=params,
        body=None,
        seed=int(header["seed"]) if "seed" in header else None,
        n_partitions=int(header.get("n-partitions", "1")),
        word_width=int(header.get("word-width", "32")),
        raw_source=source,
    )
    return CorpusEntry(
        program=program,
        kind=header["kind"],
        backend=header.get("backend") or None,
        exc_type=header.get("exc-type") or None,
        input_seed=int(header.get("input-seed", "0")),
        detail=header.get("detail", ""),
        xfail=header.get("xfail") or None,
        path=path,
    )


def load_corpus(directory: Union[str, Path]) -> List[CorpusEntry]:
    """All corpus entries under *directory*, sorted by filename."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [load_entry(path) for path in sorted(directory.glob("*.py"))]
