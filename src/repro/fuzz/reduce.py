"""Delta-debugging minimizer for failing fuzz programs.

Given a program and its failure :class:`~repro.fuzz.harness.Outcome`,
:func:`reduce_program` greedily applies tree-level reductions — drop a
statement, unwrap a loop or branch, shrink a trip count, replace an
expression by one of its operands or a constant, drop unused arrays and
parameters — keeping an edit only when the reduced program still fails
with the *same* classification (and, for crashes, the same exception
type, so reduction cannot drift from one bug to another).  The loop runs
to a fixpoint under an evaluation budget, which is the classic ddmin
trade: minimality is approximate, termination is guaranteed.

Every candidate is a complete, renderable program, so the minimizer can
never present a syntactically broken reproducer.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from .harness import (DEFAULT_BACKENDS, DEFAULT_MAX_CYCLES, Outcome,
                      run_program)
from .ir import (Assign, AugStore, Bin, BoolC, Cmp, Cond, Const, Expr, For,
                 FuzzProgram, If, Load, NotC, Store, Stmt, Un, Var, While,
                 referenced_arrays, referenced_names, subst_var)

__all__ = ["ReductionResult", "reduce_program"]


@dataclass
class ReductionResult:
    program: FuzzProgram
    outcome: Outcome
    evaluations: int
    rounds: int


def reduce_program(program: FuzzProgram, outcome: Outcome, *,
                   backends: Sequence[str] = DEFAULT_BACKENDS,
                   max_cycles: int = DEFAULT_MAX_CYCLES,
                   input_seed: int = 0,
                   max_evaluations: int = 400) -> ReductionResult:
    """Shrink *program* while it keeps failing like *outcome*."""
    if program.body is None:
        # corpus-loaded text programs have no tree to reduce
        return ReductionResult(program, outcome, 0, 0)

    evaluations = 0
    rounds = 0
    current = program.clone()
    current_outcome = outcome
    # the validity gate preserves an invariant the input already has;
    # a hand-written reproducer that is itself ill-formed (e.g. a
    # use-before-assign crash trigger) must still be reducible
    gate_validity = _well_formed(program)

    def check(candidate: FuzzProgram) -> Optional[Outcome]:
        nonlocal evaluations
        evaluations += 1
        result = run_program(candidate, backends=backends,
                             max_cycles=max_cycles, input_seed=input_seed)
        return result if outcome.matches(result) else None

    progress = True
    while progress and evaluations < max_evaluations:
        progress = False
        rounds += 1
        for candidate in _candidates(current):
            if evaluations >= max_evaluations:
                break
            if gate_validity and not _well_formed(candidate):
                continue  # an edit broke def-before-use; not a real bug
            verdict = check(candidate)
            if verdict is not None:
                current = candidate
                current_outcome = verdict
                progress = True
                break  # restart enumeration from the smaller program
    return ReductionResult(current, current_outcome, evaluations, rounds)


# ----------------------------------------------------------------------
# Candidate enumeration: each yields a complete cloned program
# ----------------------------------------------------------------------
def _candidates(program: FuzzProgram) -> Iterator[FuzzProgram]:
    for body in _block_variants(program.body):
        yield _with_body(program, body)
    yield from _drop_partitioning(program)
    yield from _drop_unused_arrays(program)
    yield from _inline_params(program)


def _with_body(program: FuzzProgram, body: List[Stmt]) -> FuzzProgram:
    clone = program.clone()
    clone.body = body
    return clone


def _drop_partitioning(program: FuzzProgram) -> Iterator[FuzzProgram]:
    if program.n_partitions > 1:
        clone = program.clone()
        clone.n_partitions = 1
        yield clone


def _drop_unused_arrays(program: FuzzProgram) -> Iterator[FuzzProgram]:
    used = referenced_arrays(program.body)
    for name in list(program.arrays):
        if name not in used and len(program.arrays) > 1:
            clone = program.clone()
            del clone.arrays[name]
            yield clone


def _inline_params(program: FuzzProgram) -> Iterator[FuzzProgram]:
    for name, value in list(program.params.items()):
        clone = program.clone()
        del clone.params[name]
        clone.body = [subst_var(s, name, Const(value))
                      for s in clone.body]
        for stmt in _walk(clone.body):
            if isinstance(stmt, For) and stmt.stop_param == name:
                stmt.stop_param = None
        yield clone


def _walk(body: List[Stmt]) -> Iterator[Stmt]:
    for s in body:
        yield s
        if isinstance(s, If):
            yield from _walk(s.then)
            yield from _walk(s.orelse)
        elif isinstance(s, (For, While)):
            yield from _walk(s.body)


def _block_variants(stmts: List[Stmt]) -> Iterator[List[Stmt]]:
    """Smaller versions of one statement list (recursively)."""
    # 1. drop whole statements, largest first (halves, then singles)
    n = len(stmts)
    if n > 1:
        half = n // 2
        yield stmts[half:]
        yield stmts[:half]
    for i in range(n):
        if n > 1 or not isinstance(stmts[i], (If, For, While)):
            yield stmts[:i] + stmts[i + 1:]
    # 2. replace a compound statement by (a substituted copy of) its body
    for i, s in enumerate(stmts):
        for replacement in _stmt_unwraps(s):
            yield stmts[:i] + replacement + stmts[i + 1:]
    # 3. rewrite one statement in place (shrunk loop, simpler exprs,
    #    recursively reduced nested blocks)
    for i, s in enumerate(stmts):
        for replacement in _stmt_variants(s):
            yield stmts[:i] + [replacement] + stmts[i + 1:]


def _stmt_unwraps(s: Stmt) -> Iterator[List[Stmt]]:
    if isinstance(s, If):
        if s.then:
            yield copy.deepcopy(s.then)
        if s.orelse:
            yield copy.deepcopy(s.orelse)
    elif isinstance(s, For):
        yield [subst_var(inner, s.var, Const(s.start))
               for inner in s.body]
    elif isinstance(s, While):
        yield [subst_var(inner, s.var, Const(0)) for inner in s.body]


def _stmt_variants(s: Stmt) -> Iterator[Stmt]:
    if isinstance(s, Assign):
        for e in _expr_variants(s.value):
            yield Assign(s.name, e)
    elif isinstance(s, Store):
        for e in _expr_variants(s.value):
            yield Store(s.array, copy.deepcopy(s.index), e)
        for e in _expr_variants(s.index):
            yield Store(s.array, e, copy.deepcopy(s.value))
    elif isinstance(s, AugStore):
        yield Store(s.array, copy.deepcopy(s.index), copy.deepcopy(s.value))
        for e in _expr_variants(s.value):
            yield AugStore(s.array, copy.deepcopy(s.index), s.op, e)
        for e in _expr_variants(s.index):
            yield AugStore(s.array, e, s.op, copy.deepcopy(s.value))
    elif isinstance(s, If):
        for c in _cond_variants(s.cond):
            yield If(c, copy.deepcopy(s.then), copy.deepcopy(s.orelse))
        for body in _block_variants(s.then):
            yield If(copy.deepcopy(s.cond), body, copy.deepcopy(s.orelse))
        for body in _block_variants(s.orelse):
            yield If(copy.deepcopy(s.cond), copy.deepcopy(s.then), body)
        if s.orelse:
            yield If(copy.deepcopy(s.cond), copy.deepcopy(s.then), [])
    elif isinstance(s, For):
        trips = max(1, (s.stop - s.start) // s.step) \
            if s.stop_param is None else s.stop
        if s.stop_param is not None:
            yield For(s.var, s.start, s.stop, s.step,
                      copy.deepcopy(s.body), None)
        elif trips > 1:
            yield For(s.var, s.start, s.start + s.step, s.step,
                      copy.deepcopy(s.body), None)
        for body in _block_variants(s.body):
            yield For(s.var, s.start, s.stop, s.step, body, s.stop_param)
    elif isinstance(s, While):
        if s.limit > 1:
            yield While(s.var, 1, copy.deepcopy(s.body))
        for body in _block_variants(s.body):
            yield While(s.var, s.limit, body)


def _expr_variants(e: Expr) -> Iterator[Expr]:
    """Strictly simpler replacements for an expression."""
    if isinstance(e, Const):
        for value in (0, 1):
            if e.value != value and (abs(e.value) > 1 or e.value < 0):
                yield Const(value)
        return
    if not isinstance(e, Var):
        yield Const(0)
        yield Const(1)
    if isinstance(e, Bin):
        yield copy.deepcopy(e.a)
        yield copy.deepcopy(e.b)
        for sub in _expr_variants(e.a):
            yield Bin(e.op, sub, copy.deepcopy(e.b))
        for sub in _expr_variants(e.b):
            yield Bin(e.op, copy.deepcopy(e.a), sub)
    elif isinstance(e, Un):
        yield copy.deepcopy(e.a)
        for sub in _expr_variants(e.a):
            yield Un(e.op, sub)
    elif isinstance(e, Load):
        for sub in _expr_variants(e.index):
            yield Load(e.array, sub)


def _well_formed(program: FuzzProgram) -> bool:
    """Cheap def-before-use / known-array check over a candidate.

    Keeps the minimizer inside the generator's validity contract: a
    candidate that references an undefined variable would *also* raise
    ``CompileError`` and could hijack the reduction of a genuine
    compiler crash toward a meaningless program.
    """
    arrays = set(program.arrays)

    def ok_expr(e: Expr, defined: set) -> bool:
        if isinstance(e, Const):
            return True
        if isinstance(e, Var):
            return e.name in defined
        if isinstance(e, Load):
            return e.array in arrays and ok_expr(e.index, defined)
        if isinstance(e, Bin):
            return ok_expr(e.a, defined) and ok_expr(e.b, defined)
        if isinstance(e, Un):
            return ok_expr(e.a, defined)
        return False

    def ok_cond(c: Cond, defined: set) -> bool:
        if isinstance(c, Cmp):
            return ok_expr(c.a, defined) and ok_expr(c.b, defined)
        if isinstance(c, BoolC):
            return all(ok_cond(p, defined) for p in c.parts)
        if isinstance(c, NotC):
            return ok_cond(c.part, defined)
        return False

    def ok_block(stmts: List[Stmt], defined: set) -> bool:
        for s in stmts:
            if isinstance(s, Assign):
                if not ok_expr(s.value, defined):
                    return False
                defined.add(s.name)
            elif isinstance(s, (Store, AugStore)):
                if s.array not in arrays \
                        or not ok_expr(s.index, defined) \
                        or not ok_expr(s.value, defined):
                    return False
            elif isinstance(s, If):
                if not ok_cond(s.cond, defined):
                    return False
                if not ok_block(s.then, set(defined)) \
                        or not ok_block(s.orelse, set(defined)):
                    return False
            elif isinstance(s, For):
                if s.stop_param is not None \
                        and s.stop_param not in program.params:
                    return False
                if not ok_block(s.body, defined | {s.var}):
                    return False
            elif isinstance(s, While):
                if not ok_block(s.body, defined | {s.var}):
                    return False
            else:
                return False
        return True

    return ok_block(program.body, set(program.params))


_TRUE = Cmp("==", Const(0), Const(0))


def _cond_variants(c: Cond) -> Iterator[Cond]:
    if c != _TRUE:
        yield copy.deepcopy(_TRUE)
    if isinstance(c, Cmp):
        for sub in _expr_variants(c.a):
            yield Cmp(c.op, sub, copy.deepcopy(c.b))
        for sub in _expr_variants(c.b):
            yield Cmp(c.op, copy.deepcopy(c.a), sub)
    elif isinstance(c, BoolC):
        for part in c.parts:
            yield copy.deepcopy(part)
        for i, part in enumerate(c.parts):
            for sub in _cond_variants(part):
                parts = [copy.deepcopy(p) for p in c.parts]
                parts[i] = sub
                yield BoolC(c.op, parts)
    elif isinstance(c, NotC):
        yield copy.deepcopy(c.part)
        for sub in _cond_variants(c.part):
            yield NotC(sub)
