"""Differential compiler fuzzing.

The paper's infrastructure re-verifies a fixed benchmark suite after
every compiler change; this package turns that oracle loose on *random*
programs.  A seeded generator emits restricted-Python algorithms the
compiler must accept, the harness runs each through the golden software
execution plus every simulation backend, and any divergence is
delta-minimized into a reproducer under ``fuzz/corpus/`` that the
regression suite replays forever after.

Entry points: ``python -m repro fuzz`` (CLI) or::

    from repro.fuzz import generate, run_program, run_campaign
"""

from .corpus import (CorpusEntry, entry_filename, load_corpus, load_entry,
                     save_entry)
from .generator import GeneratorConfig, ProgramGenerator, generate, make_images
from .harness import (DEFAULT_BACKENDS, DEFAULT_MAX_CYCLES, CampaignReport,
                      FuzzCaseResult, Outcome, run_campaign, run_program,
                      run_wave_batched)
from .ir import FuzzProgram
from .reduce import ReductionResult, reduce_program

__all__ = [
    "CampaignReport", "CorpusEntry", "DEFAULT_BACKENDS",
    "DEFAULT_MAX_CYCLES", "FuzzCaseResult", "FuzzProgram",
    "GeneratorConfig", "Outcome", "ProgramGenerator", "ReductionResult",
    "entry_filename", "generate", "load_corpus", "load_entry",
    "make_images", "reduce_program", "run_campaign", "run_program",
    "run_wave_batched", "save_entry",
]
