"""Differential execution harness: one program, four executions.

For every generated program the harness compiles it, runs the golden
Python execution, then drives the design through each registered
simulation backend and cross-checks everything the infrastructure can
observe: final memory contents (against golden) and cycle counts
(across backends).  The outcome is a single classification:

``pass``
    every backend matches golden bit-for-bit and all cycle counts agree
``compile-crash``
    the compiler raised (including frontend rejections — the generator
    guarantees validity, so any rejection is a bug in one of the two)
``golden-crash``
    the plain-Python run itself raised; by construction this means a
    generator bug, never a compiler bug
``sim-crash``
    a simulation backend raised something other than a timeout
``timeout``
    a backend exceeded the cycle budget
``mismatch``
    a backend produced different memory contents than golden, or the
    backends disagree on the cycle count

Campaigns fan iterations out over a fork-based process pool (the same
machinery as :meth:`repro.core.TestSuite.run`), minimize every failure
with :mod:`repro.fuzz.reduce`, and write reproducers into the corpus
directory for the regression suite to replay.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..compiler.partitioning import SPILL_MEMORY
from ..compiler.pipeline import compile_function
from ..golden.runner import run_golden
from ..obs.coverage import CoverageCollector
from ..obs.trace import span
from ..rtg.context import ReconfigurationContext
from ..rtg.executor import RtgExecutor
from ..sim import SIMULATOR_BACKENDS
from ..sim.errors import SimulationTimeout
from ..util.files import compare_images
from .generator import GeneratorConfig, generate, make_images
from .ir import FuzzProgram

__all__ = ["Outcome", "FuzzCaseResult", "CampaignReport", "run_program",
           "run_campaign", "run_wave_batched", "DEFAULT_BACKENDS",
           "DEFAULT_MAX_CYCLES"]

DEFAULT_BACKENDS: Tuple[str, ...] = tuple(sorted(SIMULATOR_BACKENDS))
DEFAULT_MAX_CYCLES = 250_000

FAILURE_KINDS = ("compile-crash", "golden-crash", "sim-crash", "mismatch",
                 "timeout")


@dataclass
class Outcome:
    """Classification of one differential run."""

    kind: str
    backend: Optional[str] = None
    detail: str = ""
    exc_type: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.kind != "pass"

    def matches(self, other: "Outcome") -> bool:
        """Reduction predicate: same failure class (and, for crashes,
        the same exception type — so the minimizer cannot wander from
        one bug to a different one)."""
        if self.kind != other.kind:
            return False
        if self.exc_type and other.exc_type:
            return self.exc_type == other.exc_type
        return True

    def describe(self) -> str:
        parts = [self.kind]
        if self.backend:
            parts.append(f"backend={self.backend}")
        if self.exc_type:
            parts.append(self.exc_type)
        text = " ".join(parts)
        if self.detail:
            first = self.detail.strip().splitlines()[0]
            text += f": {first}"
        return text


@dataclass
class FuzzCaseResult:
    seed: int
    outcome: Outcome
    seconds: float
    #: the offending program; shipped back to the parent only on failure
    program: Optional[FuzzProgram] = None
    #: coverage signature of this program's first-backend run — state and
    #: transition labels *without* the design name, so signatures overlap
    #: across generated programs (the FSM naming scheme ``S_{block}_{step}``
    #: is shared) and "new coverage" is meaningful campaign-wide
    coverage_items: Optional[Tuple[str, ...]] = None


@dataclass
class CampaignReport:
    iterations: int = 0
    seed: int = 0
    jobs: int = 1
    wall_seconds: float = 0.0
    counts: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzCaseResult] = field(default_factory=list)
    #: corpus files written for minimized reproducers
    written: List[str] = field(default_factory=list)
    #: union of coverage signatures over the whole campaign
    coverage_items: set = field(default_factory=set)
    #: seeds whose program exercised at least one item no earlier seed
    #: had — the first step toward coverage-guided generation
    new_coverage_seeds: List[int] = field(default_factory=list)
    #: one-time fork-pool spin-up cost, paid before the first wave
    pool_startup_seconds: float = 0.0
    #: dispatch waves served by that single pool
    pool_waves: int = 0
    #: spin-up cost a per-wave pool would have paid again on every
    #: wave after the first — the measured value of pool reuse
    pool_reuse_saved_seconds: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.failures

    @property
    def mismatches(self) -> List[FuzzCaseResult]:
        """Mismatch failures with a program — the divergence-triage feed."""
        return [failure for failure in self.failures
                if failure.outcome.kind == "mismatch"
                and failure.program is not None]

    def summary(self) -> str:
        per_kind = ", ".join(f"{kind}={self.counts[kind]}"
                             for kind in sorted(self.counts))
        lines = [
            f"fuzz: {self.iterations} program(s), "
            f"{len(self.failures)} failure(s), "
            f"wall {self.wall_seconds:.2f}s "
            f"(seed={self.seed}, jobs={self.jobs}) [{per_kind}]"
        ]
        if self.coverage_items:
            lines.append(
                f"  coverage: {len(self.coverage_items)} item(s), "
                f"{len(self.new_coverage_seeds)} new-coverage seed(s)")
        if self.pool_waves > 1:
            lines.append(
                f"  pool: {self.pool_waves} wave(s) on one pool, "
                f"startup {self.pool_startup_seconds * 1e3:.0f}ms paid "
                f"once (~{self.pool_reuse_saved_seconds * 1e3:.0f}ms "
                f"re-spawn cost avoided)")
        for failure in self.failures:
            lines.append(f"  [FAIL] seed {failure.seed}: "
                         f"{failure.outcome.describe()}")
        for path in self.written:
            lines.append(f"  reproducer: {path}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Single-program differential run
# ----------------------------------------------------------------------
def run_program(program: FuzzProgram, *,
                backends: Sequence[str] = DEFAULT_BACKENDS,
                max_cycles: int = DEFAULT_MAX_CYCLES,
                input_seed: int = 0,
                coverage: Optional[CoverageCollector] = None) -> Outcome:
    """Compile, golden-run and simulate *program*; classify the outcome.

    When a *coverage* collector is supplied it is attached to the first
    backend's execution (one backend suffices — all backends run the
    same control path, and the collector would otherwise triple-count).
    """
    try:
        design = compile_function(
            program.source, program.arrays, dict(program.params),
            name=program.name, word_width=program.word_width,
            n_partitions=program.n_partitions,
        )
    except Exception as exc:  # noqa: BLE001 - classification boundary
        return Outcome("compile-crash", detail=_crash_detail(exc),
                       exc_type=type(exc).__name__)

    inputs = make_images(program, input_seed)
    golden_images = {name: image.copy() for name, image in inputs.items()}
    try:
        run_golden(program.func(), program.arrays, golden_images,
                   dict(program.params))
    except Exception as exc:  # noqa: BLE001 - classification boundary
        return Outcome("golden-crash", detail=_crash_detail(exc),
                       exc_type=type(exc).__name__)

    cycles: Dict[str, int] = {}
    for position, backend in enumerate(backends):
        images = {name: image.copy() for name, image in inputs.items()}
        context = ReconfigurationContext.from_rtg(design.rtg, initial=images)
        executor = RtgExecutor(design.rtg, context, backend=backend,
                               max_cycles_per_configuration=max_cycles,
                               coverage=coverage if position == 0 else None)
        try:
            result = executor.run()
        except SimulationTimeout as exc:
            return Outcome("timeout", backend=backend, detail=str(exc),
                           exc_type=type(exc).__name__)
        except Exception as exc:  # noqa: BLE001 - classification boundary
            return Outcome("sim-crash", backend=backend,
                           detail=_crash_detail(exc),
                           exc_type=type(exc).__name__)
        cycles[backend] = result.total_cycles

        for name in program.arrays:
            if name == SPILL_MEMORY:
                continue
            mismatches = compare_images(golden_images[name],
                                        context.memory(name), limit=4)
            if mismatches:
                width = program.arrays[name].width
                shown = "; ".join(m.describe(width) for m in mismatches)
                return Outcome(
                    "mismatch", backend=backend,
                    detail=f"memory {name!r}: {shown}",
                )

    if len(set(cycles.values())) > 1:
        detail = ", ".join(f"{b}={c}" for b, c in sorted(cycles.items()))
        return Outcome("mismatch", detail=f"cycle divergence: {detail}")

    return Outcome("pass")


def _crash_detail(exc: Exception) -> str:
    return "".join(traceback.format_exception_only(type(exc), exc)).strip()


# ----------------------------------------------------------------------
# Batched wave execution
# ----------------------------------------------------------------------
def _wave_group_key(design) -> Optional[str]:
    """Grouping key for batched wave execution, or None if ungroupable.

    Extends :func:`repro.core.kernelcache.batch_group_key` (one
    configuration's kernel identity) over the whole RTG: two designs
    with equal keys elaborate identical kernels through identical
    reconfiguration control, so their stimulus sets can share batches.
    """
    from ..core.kernelcache import batch_group_key, digest_parts

    rtg = design.rtg
    parts: List[str] = ["wave-batch-v1", str(rtg.start),
                        str(sorted(rtg.final_configurations))]
    for name in sorted(rtg.configurations):
        ref = rtg.configurations[name]
        if ref.datapath is None or ref.fsm is None:
            return None  # XML-backed configuration: not comparable here
        parts.append(name)
        parts.append(batch_group_key(ref.datapath, ref.fsm))
    for transition in rtg.transitions:
        condition = getattr(transition.condition, "to_python",
                            lambda t=transition: str(t.condition))()
        parts.append(f"{transition.source}->{transition.target}"
                     f":{condition}")
    for name in sorted(rtg.memories):
        decl = rtg.memories[name]
        parts.append(f"mem:{name}:{decl.width}x{decl.depth}")
    return digest_parts(*parts)


def run_wave_batched(programs: Sequence[FuzzProgram], *,
                     input_seed: int = 0,
                     max_cycles: int = DEFAULT_MAX_CYCLES,
                     min_group: int = 2
                     ) -> Tuple[List[Outcome], Dict[str, int]]:
    """Run a wave of programs through the batched backend, folding
    structurally-identical programs into shared batches.

    Programs whose designs share a :func:`_wave_group_key` elaborate
    the same kernel, so the wave runs them as one
    :class:`~repro.rtg.RtgBatchExecutor` batch — each lane still
    compared word-for-word against its *own* golden run.  Batching is
    an optimization, never the failure oracle: any lane that does not
    cleanly pass inside a batch (mismatch, timeout, crash, or an
    unsupported design) is re-run serially through
    :func:`run_program` with the batched backend for exact
    classification.  Returns one :class:`Outcome` per program, in
    order, plus wave statistics.
    """
    from ..rtg.executor import RtgBatchExecutor
    from ..sim.batched import BatchUnsupported

    outcomes: List[Optional[Outcome]] = [None] * len(programs)
    designs = [None] * len(programs)
    goldens: List[Optional[Dict[str, object]]] = [None] * len(programs)
    groups: Dict[str, List[int]] = {}
    serial: List[int] = []
    stats = {"programs": len(programs), "batches": 0,
             "batched_programs": 0, "serial_programs": 0,
             "reruns": 0}

    for index, program in enumerate(programs):
        try:
            designs[index] = compile_function(
                program.source, program.arrays, dict(program.params),
                name=program.name, word_width=program.word_width,
                n_partitions=program.n_partitions,
            )
        except Exception as exc:  # noqa: BLE001 - classification boundary
            outcomes[index] = Outcome("compile-crash",
                                      detail=_crash_detail(exc),
                                      exc_type=type(exc).__name__)
            continue
        inputs = make_images(program, input_seed)
        golden = {name: image.copy() for name, image in inputs.items()}
        try:
            run_golden(program.func(), program.arrays, golden,
                       dict(program.params))
        except Exception as exc:  # noqa: BLE001 - classification boundary
            outcomes[index] = Outcome("golden-crash",
                                      detail=_crash_detail(exc),
                                      exc_type=type(exc).__name__)
            continue
        goldens[index] = golden
        key = _wave_group_key(designs[index])
        if key is None:
            serial.append(index)
        else:
            groups.setdefault(key, []).append(index)

    def rerun(index: int) -> Outcome:
        stats["reruns"] += 1
        return run_program(programs[index], backends=("batched",),
                           max_cycles=max_cycles, input_seed=input_seed)

    for key in sorted(groups):
        members = groups[key]
        if len(members) < min_group:
            serial.extend(members)
            continue
        design = designs[members[0]]
        contexts = [ReconfigurationContext.from_rtg(
            design.rtg,
            initial={name: image.copy()
                     for name, image
                     in make_images(programs[index], input_seed).items()})
            for index in members]
        stats["batches"] += 1
        stats["batched_programs"] += len(members)
        try:
            executor = RtgBatchExecutor(
                design.rtg, contexts,
                max_cycles_per_configuration=max_cycles)
            executor.run()
        except (BatchUnsupported, SimulationTimeout, Exception):  # noqa: B014
            # batch-level failure: exact classification is the serial
            # harness's job, one lane at a time
            for index in members:
                outcomes[index] = rerun(index)
            continue
        for slot, index in enumerate(members):
            program = programs[index]
            failed = False
            for name in program.arrays:
                if name == SPILL_MEMORY:
                    continue
                mismatches = compare_images(
                    goldens[index][name],
                    contexts[slot].memory(name), limit=4)
                if mismatches:
                    failed = True
                    break
            # a clean pass inside the batch is sound (the lane's own
            # memories equal its own golden); anything else gets the
            # serial harness's exact classification
            outcomes[index] = rerun(index) if failed else Outcome("pass")

    for index in serial:
        stats["serial_programs"] += 1
        outcomes[index] = run_program(programs[index],
                                      backends=("batched",),
                                      max_cycles=max_cycles,
                                      input_seed=input_seed)

    return [outcome or Outcome("pass") for outcome in outcomes], stats


# ----------------------------------------------------------------------
# Campaigns
# ----------------------------------------------------------------------
# Worker-side state for the fork-based pool: GeneratorConfig carries no
# closures, but shipping it once via a module global keeps the per-task
# payload to a single integer seed (same pattern as core.testsuite).
_WORKER_STATE: Optional[
    Tuple[GeneratorConfig, Tuple[str, ...], int, int, bool]] = None


def _worker_warmup(_index: int) -> None:
    """No-op task that forces worker processes to exist (and be timed)."""
    return None


def _run_one_seed(case_seed: int) -> FuzzCaseResult:
    config, backends, max_cycles, input_seed, collect = _WORKER_STATE
    started = time.perf_counter()
    collector = CoverageCollector() if collect else None
    seed_span = span("fuzz.seed", "fuzz", seed=case_seed)
    with seed_span:
        try:
            program = generate(case_seed, config)
            outcome = run_program(program, backends=backends,
                                  max_cycles=max_cycles,
                                  input_seed=input_seed,
                                  coverage=collector)
        except Exception as exc:  # noqa: BLE001 - harness bug, not a finding
            outcome = Outcome("harness-error",
                              detail=traceback.format_exc(),
                              exc_type=type(exc).__name__)
            program = None
        seed_span.set("outcome", outcome.kind)
    seconds = time.perf_counter() - started
    items = (tuple(collector.report.items())
             if collector is not None else None)
    return FuzzCaseResult(case_seed, outcome, seconds,
                          program=program if outcome.failed else None,
                          coverage_items=items)


def run_campaign(iterations: int, *, seed: int = 0, jobs: int = 1,
                 config: Optional[GeneratorConfig] = None,
                 backends: Sequence[str] = DEFAULT_BACKENDS,
                 max_cycles: int = DEFAULT_MAX_CYCLES,
                 input_seed: int = 0,
                 time_budget: Optional[float] = None,
                 coverage: bool = False,
                 on_progress=None,
                 ledger=None) -> CampaignReport:
    """Run *iterations* differential tests; deterministic per *seed*.

    Case ``i`` always fuzzes generator seed ``seed + i`` regardless of
    ``jobs``, so any failure reproduces serially.  ``time_budget``
    (seconds) stops the campaign early once exceeded — used by the
    nightly CI job.  Failures are returned unminimized; the caller
    decides whether to reduce (see :func:`repro.fuzz.reduce_failure`).
    ``coverage=True`` records each program's coverage signature and
    reports the seeds that reached items no earlier seed did
    (``report.new_coverage_seeds``).  ``ledger`` (a
    :class:`repro.obs.Ledger` or a path) appends the campaign's
    classification tallies as one ``fuzz`` row — written by the parent
    after the pool drains, so workers never touch the database.
    """
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    config = config or GeneratorConfig()
    report = CampaignReport(seed=seed, jobs=jobs)
    started = time.perf_counter()

    global _WORKER_STATE
    _WORKER_STATE = (config, tuple(backends), max_cycles, input_seed,
                     coverage)
    parallel = (jobs > 1 and iterations > 1
                and "fork" in multiprocessing.get_all_start_methods())
    try:
        if parallel:
            context = multiprocessing.get_context("fork")
            wave = max(jobs * 8, 16)
            # one pool serves every wave: the fork spin-up cost is paid
            # (and measured) exactly once, up front, instead of once
            # per wave; waves remain as the time-budget check cadence
            with ProcessPoolExecutor(max_workers=jobs,
                                     mp_context=context) as pool:
                spawn_started = time.perf_counter()
                for _ in pool.map(_worker_warmup, range(jobs)):
                    pass
                report.pool_startup_seconds = (
                    time.perf_counter() - spawn_started)
                for base in range(0, iterations, wave):
                    report.pool_waves += 1
                    seeds = [seed + i for i in
                             range(base, min(base + wave, iterations))]
                    for result in pool.map(_run_one_seed, seeds,
                                           chunksize=2):
                        _absorb(report, result, on_progress)
                    report.wall_seconds = time.perf_counter() - started
                    if time_budget is not None \
                            and report.wall_seconds >= time_budget:
                        break
                report.pool_reuse_saved_seconds = (
                    report.pool_startup_seconds
                    * max(0, report.pool_waves - 1))
        else:
            for i in range(iterations):
                _absorb(report, _run_one_seed(seed + i), on_progress)
                report.wall_seconds = time.perf_counter() - started
                if time_budget is not None \
                        and report.wall_seconds >= time_budget:
                    break
    finally:
        _WORKER_STATE = None
    report.wall_seconds = time.perf_counter() - started
    if ledger is not None:
        from ..obs.ledger import Ledger
        owns = not isinstance(ledger, Ledger)
        sink = Ledger(ledger) if owns else ledger
        try:
            sink.record_fuzz(report)
        finally:
            if owns:
                sink.close()
    return report


def _absorb(report: CampaignReport, result: FuzzCaseResult,
            on_progress) -> None:
    report.iterations += 1
    kind = result.outcome.kind
    report.counts[kind] = report.counts.get(kind, 0) + 1
    if result.outcome.failed:
        report.failures.append(result)
    if result.coverage_items:
        fresh = [item for item in result.coverage_items
                 if item not in report.coverage_items]
        if fresh:
            report.coverage_items.update(fresh)
            report.new_coverage_seeds.append(result.seed)
    if on_progress is not None:
        on_progress(result)
