"""The host processor's instruction set and assembler.

The paper closes with "further work will focus on functional simulation
of a microprocessor tightly coupled to reconfigurable hardware
components", and argues earlier that using one language for both sides
removes the need for specialised co-simulation environments.  This
module defines the instruction set of a deliberately small accumulator
machine — enough to orchestrate accelerators (move data, branch, start,
wait) without becoming a second compiler project.

Instructions (ACC is the accumulator; *addr* is a unified word address
over the shared memory map; *imm* a constant; *label* a branch target):

=========== =====================================================
``loadi``   ACC ← imm
``load``    ACC ← mem[addr]
``loadx``   ACC ← mem[addr + X]  (X-indexed, for array walks)
``store``   mem[addr] ← ACC
``storex``  mem[addr + X] ← ACC
``add``     ACC ← ACC + mem[addr]
``addi``    ACC ← ACC + imm
``sub``     ACC ← ACC - mem[addr]
``subi``    ACC ← ACC - imm
``muli``    ACC ← ACC * imm
``setx``    X ← ACC
``getx``    ACC ← X
``incx``    X ← X + 1
``jmp``     PC ← label
``beqz``    if ACC == 0: PC ← label
``bnez``    if ACC != 0: PC ← label
``bltz``    if ACC < 0: PC ← label
``start``   raise the accelerator's start line
``clear``   drop the accelerator's start line
``wait``    stall until the accelerator's done line is high
``nop``     do nothing
``halt``    stop the processor
=========== =====================================================

Programs are written as ``("op", arg)`` tuples with ``("label", name)``
markers; :func:`assemble` resolves labels into instruction indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["Instruction", "assemble", "CosimError", "OPCODES"]


class CosimError(Exception):
    """A co-simulation program or system is malformed."""


#: opcode -> argument kind: None, "imm", "addr" or "label"
OPCODES: Dict[str, Optional[str]] = {
    "loadi": "imm",
    "load": "addr",
    "loadx": "addr",
    "store": "addr",
    "storex": "addr",
    "add": "addr",
    "addi": "imm",
    "sub": "addr",
    "subi": "imm",
    "muli": "imm",
    "setx": None,
    "getx": None,
    "incx": None,
    "jmp": "label",
    "beqz": "label",
    "bnez": "label",
    "bltz": "label",
    "start": None,
    "clear": None,
    "wait": None,
    "nop": None,
    "halt": None,
}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction (labels already resolved)."""

    op: str
    arg: Optional[int] = None

    def __str__(self) -> str:
        return self.op if self.arg is None else f"{self.op} {self.arg}"


Entry = Union[Tuple[str], Tuple[str, object]]


def assemble(program: Sequence[Entry]) -> List[Instruction]:
    """Resolve labels and validate a program written as tuples."""
    labels: Dict[str, int] = {}
    cursor = 0
    for entry in program:
        if not entry or not isinstance(entry, tuple):
            raise CosimError(f"program entries must be tuples, got {entry!r}")
        if entry[0] == "label":
            name = entry[1]
            if name in labels:
                raise CosimError(f"duplicate label {name!r}")
            labels[name] = cursor
        else:
            cursor += 1

    instructions: List[Instruction] = []
    for entry in program:
        op = entry[0]
        if op == "label":
            continue
        if op not in OPCODES:
            raise CosimError(
                f"unknown opcode {op!r} (known: {sorted(OPCODES)})"
            )
        kind = OPCODES[op]
        arg = entry[1] if len(entry) > 1 else None
        if kind is None:
            if arg is not None:
                raise CosimError(f"{op!r} takes no argument")
            instructions.append(Instruction(op))
        elif kind == "label":
            if arg not in labels:
                raise CosimError(f"{op!r}: unknown label {arg!r}")
            instructions.append(Instruction(op, labels[arg]))
        else:  # imm / addr
            if not isinstance(arg, int):
                raise CosimError(
                    f"{op!r} needs an integer argument, got {arg!r}"
                )
            instructions.append(Instruction(op, arg))
    if not any(instr.op == "halt" for instr in instructions):
        raise CosimError("program never halts (add a ('halt',) entry)")
    return instructions
