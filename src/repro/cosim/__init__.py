"""Hardware/software co-simulation (the paper's stated further work).

A small accumulator microprocessor (:class:`Microprocessor`) shares one
simulator — and one set of memory images — with a compiled accelerator,
coupled through a start/done handshake.  See :class:`CoupledSystem`.
"""

from .cpu import MemoryMap, Microprocessor
from .isa import CosimError, Instruction, OPCODES, assemble
from .system import CosimResult, CoupledSystem

__all__ = [
    "CoupledSystem", "CosimResult",
    "Microprocessor", "MemoryMap",
    "Instruction", "assemble", "OPCODES", "CosimError",
]
