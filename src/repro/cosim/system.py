"""Processor + accelerator in one simulator: the coupled system.

:class:`CoupledSystem` elaborates a compiled single-configuration design
with the start/done handshake enabled, attaches its memory resources
(plus a CPU scratch segment) to a unified memory map, and drops a
:class:`Microprocessor` running the given program into the *same*
simulator — the paper's envisioned "microprocessor tightly coupled to
reconfigurable hardware components", with zero cross-simulator glue.

Invocation protocol from the program's point of view::

    write arguments into the shared memories
    ("start",)        # raise the start line
    ("wait",)         # stall until the accelerator asserts done
    ("clear",)        # acknowledge; the accelerator re-arms
    read results, repeat as often as needed
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..compiler.pipeline import Design
from ..sim.kernel import Simulator
from ..translate.to_sim import SimDesign, build_simulation
from ..util.files import MemoryImage
from .cpu import MemoryMap, Microprocessor
from .isa import CosimError, Instruction, assemble

__all__ = ["CoupledSystem", "CosimResult"]


@dataclass
class CosimResult:
    """Outcome of one co-simulated run."""

    cycles: int
    instructions: int
    stall_cycles: int
    accelerator_invocations: int

    @property
    def cpu_utilisation(self) -> float:
        """Fraction of cycles the CPU was executing (not stalled)."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


class CoupledSystem:
    """One simulator containing a CPU and one accelerator configuration."""

    def __init__(self, design: Design,
                 program: Sequence,
                 *,
                 memories: Optional[Dict[str, MemoryImage]] = None,
                 scratch_words: int = 64,
                 fsm_mode: str = "generated") -> None:
        if design.multi_configuration:
            raise CosimError(
                "CoupledSystem couples a single configuration; compile "
                "without temporal partitioning (or couple each partition "
                "separately)"
            )
        self.design = design
        self.sim = Simulator(name=f"{design.name}_system")
        start = self.sim.signal("cpu_start", 1)

        config = design.configurations[0]
        self.accelerator: SimDesign = build_simulation(
            config.datapath, config.fsm, memories=memories, sim=self.sim,
            fsm_mode=fsm_mode, start_signal=start,
        )
        done = self.accelerator.done_signal
        if done is None:
            raise CosimError("the accelerator has no done output")

        # unified memory map: accelerator memories first (declaration
        # order), then the CPU's private scratch segment
        self.bus = MemoryMap()
        for name, image in self.accelerator.memories.items():
            self.bus.attach(name, image)
        self.scratch = MemoryImage(design.word_width, scratch_words,
                                   name="scratch")
        self.bus.attach("scratch", self.scratch)

        instructions: List[Instruction]
        if program and isinstance(program[0], Instruction):
            instructions = list(program)
        else:
            instructions = assemble(program)
        self.cpu = Microprocessor("cpu", instructions, self.bus,
                                  start=start, done=done)
        self.sim.add(self.cpu)
        self.sim.settle()

    # ------------------------------------------------------------------
    def address_of(self, segment: str, offset: int = 0) -> int:
        """Absolute bus address of ``segment[offset]`` (program helper)."""
        return self.bus.address_of(segment, offset)

    def memory(self, name: str) -> MemoryImage:
        if name == "scratch":
            return self.scratch
        return self.accelerator.memory(name)

    def run(self, max_cycles: int = 10_000_000) -> CosimResult:
        """Run until the CPU halts; returns the execution record."""
        cycles = self.sim.run_until(lambda: self.cpu.halted,
                                    max_cycles=max_cycles)
        return CosimResult(
            cycles=cycles,
            instructions=self.cpu.instructions_executed,
            stall_cycles=self.cpu.stall_cycles,
            accelerator_invocations=self.accelerator.controller.invocations,
        )
