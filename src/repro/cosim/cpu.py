"""The host microprocessor model and its memory map.

The processor is a behavioural simulation component like any operator in
the library — "the use of the same language for modeling both components
permits to mix both software and reconfigurable hardware components
without specialized co-simulation environments" (paper §1).  It executes
one instruction per clock edge against a unified word-addressed memory
map whose segments are the same :class:`MemoryImage` objects the
accelerator's SRAM ports use — tight coupling through shared memory —
and talks to the accelerator over a start/done wire pair.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sim.component import Sequential
from ..sim.signal import Signal
from ..util.files import MemoryImage
from .isa import CosimError, Instruction

__all__ = ["MemoryMap", "Microprocessor"]


class MemoryMap:
    """Unified word-addressed view over named memory segments."""

    def __init__(self) -> None:
        #: ordered (name, base, image)
        self.segments: List[Tuple[str, int, MemoryImage]] = []
        self._next_base = 0

    def attach(self, name: str, image: MemoryImage,
               base: Optional[int] = None) -> int:
        """Map *image* at *base* (default: next free); returns the base."""
        if any(existing == name for existing, _, _ in self.segments):
            raise CosimError(f"segment {name!r} already attached")
        if base is None:
            base = self._next_base
        for other, other_base, other_image in self.segments:
            if base < other_base + other_image.depth and \
                    other_base < base + image.depth:
                raise CosimError(
                    f"segment {name!r} at {base} overlaps {other!r}"
                )
        self.segments.append((name, base, image))
        self._next_base = max(self._next_base, base + image.depth)
        return base

    def base_of(self, name: str) -> int:
        for segment, base, _ in self.segments:
            if segment == name:
                return base
        raise CosimError(f"no segment named {name!r}")

    def address_of(self, name: str, offset: int = 0) -> int:
        """The absolute address of ``name[offset]``."""
        return self.base_of(name) + offset

    def _locate(self, address: int) -> Tuple[MemoryImage, int]:
        for _, base, image in self.segments:
            if base <= address < base + image.depth:
                return image, address - base
        raise CosimError(f"bus error: address {address} is unmapped")

    def read(self, address: int) -> int:
        image, offset = self._locate(address)
        return image.read_signed(offset)

    def write(self, address: int, value: int) -> None:
        image, offset = self._locate(address)
        image.write(offset, value)

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}@{base}(+{image.depth})"
                          for name, base, image in self.segments)
        return f"MemoryMap({inner})"


class Microprocessor(Sequential):
    """A one-instruction-per-cycle accumulator CPU.

    ``start`` is driven by the CPU (the accelerator's invocation line);
    ``done`` is sampled by ``wait``.  Word width follows the memory map's
    images; the accumulator itself is a Python int masked on store.
    """

    def __init__(self, name: str, program: List[Instruction],
                 bus: MemoryMap, start: Signal,
                 done: Optional[Signal] = None) -> None:
        super().__init__(name, clock_enable=None)
        if not program:
            raise CosimError("empty program")
        self.program = program
        self.bus = bus
        self.start = start
        self.done = done
        start.set_driver(self)
        self.pc = 0
        self.acc = 0
        self.x = 0
        self.halted = False
        self.waiting = False
        self.instructions_executed = 0
        self.stall_cycles = 0
        #: execution trace of (pc, op) pairs when enabled
        self.trace: Optional[List[Tuple[int, str]]] = None

    def enable_trace(self) -> None:
        self.trace = []

    # ------------------------------------------------------------------
    def on_edge(self, sim) -> None:
        if self.halted:
            return
        if self.waiting:
            if self.done is None or self.done.value:
                self.waiting = False
            else:
                self.stall_cycles += 1
                return
        if not 0 <= self.pc < len(self.program):
            raise CosimError(
                f"{self.name!r}: PC {self.pc} outside the program"
            )
        instruction = self.program[self.pc]
        if self.trace is not None:
            self.trace.append((self.pc, instruction.op))
        self.pc += 1
        self.instructions_executed += 1
        self._execute(sim, instruction)

    def _execute(self, sim, instruction: Instruction) -> None:
        op, arg = instruction.op, instruction.arg
        if op == "loadi":
            self.acc = arg
        elif op == "load":
            self.acc = self.bus.read(arg)
        elif op == "loadx":
            self.acc = self.bus.read(arg + self.x)
        elif op == "store":
            self.bus.write(arg, self.acc)
        elif op == "storex":
            self.bus.write(arg + self.x, self.acc)
        elif op == "add":
            self.acc += self.bus.read(arg)
        elif op == "addi":
            self.acc += arg
        elif op == "sub":
            self.acc -= self.bus.read(arg)
        elif op == "subi":
            self.acc -= arg
        elif op == "muli":
            self.acc *= arg
        elif op == "setx":
            self.x = self.acc
        elif op == "getx":
            self.acc = self.x
        elif op == "incx":
            self.x += 1
        elif op == "jmp":
            self.pc = arg
        elif op == "beqz":
            if self.acc == 0:
                self.pc = arg
        elif op == "bnez":
            if self.acc != 0:
                self.pc = arg
        elif op == "bltz":
            if self.acc < 0:
                self.pc = arg
        elif op == "start":
            sim.drive(self.start, 1)
        elif op == "clear":
            sim.drive(self.start, 0)
        elif op == "wait":
            if self.done is None:
                raise CosimError(
                    f"{self.name!r}: 'wait' without a done line"
                )
            self.waiting = True
        elif op == "nop":
            pass
        elif op == "halt":
            self.halted = True
        else:  # pragma: no cover - assembler validates opcodes
            raise CosimError(f"unknown opcode {op!r}")

    def signals(self):
        return tuple(s for s in (self.start, self.done) if s is not None)
