"""The reconfiguration executor: run a design through its RTG.

This is the paper's generated "rtg.java": it sequences the simulation
through the temporal partitions — load a configuration, simulate it to
``done``, evaluate the RTG transition guards, reconfigure, repeat.  Each
configuration gets a fresh simulator (new hardware after reconfiguration)
but shares the context's memory images (state that survives on the
platform's RAMs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..hdl.model.rtg import ConfigurationRef, Rtg, RtgError
from ..hdl.xmlio.datapath_xml import load_datapath
from ..hdl.xmlio.fsm_xml import load_fsm
from ..obs.trace import span
from ..sim.batched import DEFAULT_QUANTUM, BatchUnsupported, LaneBatch
from ..sim.errors import SimulationTimeout
from ..translate.to_python import InterpretedRtgControl, compile_rtg
from ..translate.to_sim import SimDesign, build_simulation
from ..util.files import MemoryImage
from .context import ReconfigurationContext

__all__ = ["ConfigurationRun", "RtgRunResult", "RtgExecutor",
           "RtgBatchRunResult", "RtgBatchExecutor"]


@dataclass
class ConfigurationRun:
    """Timing record of one configuration execution."""

    configuration: str
    cycles: int
    evaluations: int
    final_state: str
    #: kernel counters harvested after the run (``SimulationStats``
    #: plus the controller's transition count) — obs.metrics raw input
    stats: Dict[str, int] = field(default_factory=dict)


@dataclass
class RtgRunResult:
    """Aggregate record of a complete RTG execution."""

    runs: List[ConfigurationRun] = field(default_factory=list)
    reconfigurations: int = 0

    @property
    def total_cycles(self) -> int:
        return sum(run.cycles for run in self.runs)

    @property
    def total_evaluations(self) -> int:
        return sum(run.evaluations for run in self.runs)

    @property
    def trace(self) -> List[str]:
        return [run.configuration for run in self.runs]


class RtgExecutor:
    """Executes an RTG over a :class:`ReconfigurationContext`."""

    def __init__(self, rtg: Rtg,
                 context: Optional[ReconfigurationContext] = None,
                 *,
                 base_dir: Optional[Union[str, Path]] = None,
                 fsm_mode: str = "generated",
                 control_mode: str = "generated",
                 backend: str = "event",
                 max_cycles_per_configuration: int = 50_000_000,
                 max_reconfigurations: int = 10_000,
                 trace_dir: Optional[Union[str, Path]] = None,
                 coverage=None) -> None:
        rtg.validate()
        self.rtg = rtg
        self.context = context or ReconfigurationContext.from_rtg(rtg)
        self.base_dir = Path(base_dir) if base_dir is not None else None
        self.fsm_mode = fsm_mode
        self.backend = backend
        self.max_cycles = max_cycles_per_configuration
        self.max_reconfigurations = max_reconfigurations
        #: when set, each configuration run dumps a VCD waveform
        #: ``<trace_dir>/<run#>_<configuration>.vcd``
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        if control_mode == "generated":
            self.control = compile_rtg(rtg)
        elif control_mode == "interpreted":
            self.control = InterpretedRtgControl(rtg)
        else:
            raise ValueError(
                f"control_mode must be 'generated' or 'interpreted', "
                f"got {control_mode!r}"
            )
        #: observer hook: called with the live SimDesign before each run
        self.on_configure = None
        #: optional :class:`repro.obs.CoverageCollector`; attached to
        #: each configuration before it runs, harvested afterwards (even
        #: after a timeout, so partial coverage survives)
        self.coverage = coverage

    # ------------------------------------------------------------------
    def _resolve(self, ref: ConfigurationRef):
        datapath = ref.datapath
        fsm = ref.fsm
        if datapath is None or fsm is None:
            if self.base_dir is None:
                raise RtgError(
                    f"configuration {ref.name!r} has no attached design "
                    f"and no base_dir to load XML from"
                )
            datapath = datapath or load_datapath(
                self.base_dir / ref.datapath_file)
            fsm = fsm or load_fsm(self.base_dir / ref.fsm_file)
        return datapath, fsm

    def _configure(self, name: str) -> SimDesign:
        """Reconfiguration: elaborate fresh hardware on shared memories."""
        ref = self.rtg.configurations[name]
        datapath, fsm = self._resolve(ref)
        return build_simulation(datapath, fsm, memories=self.context.memories,
                                fsm_mode=self.fsm_mode, backend=self.backend)

    def run(self) -> RtgRunResult:
        """Execute from the start configuration until a final one ends."""
        result = RtgRunResult()
        current: Optional[str] = self.control.start
        while current is not None:
            if len(result.runs) > self.max_reconfigurations:
                raise RtgError(
                    f"exceeded {self.max_reconfigurations} "
                    f"reconfigurations — runaway RTG?"
                )
            with span("rtg.configure", "rtg", configuration=current):
                design = self._configure(current)
            if self.coverage is not None:
                self.coverage.attach(design)
            if self.on_configure is not None:
                self.on_configure(design)
            simulate = span("rtg.simulate", "rtg", configuration=current,
                            run=len(result.runs), backend=self.backend)
            try:
                with simulate:
                    if self.trace_dir is not None:
                        self.trace_dir.mkdir(parents=True, exist_ok=True)
                        trace_path = self.trace_dir / \
                            f"{len(result.runs)}_{current}.vcd"
                        with design.trace(trace_path):
                            cycles = design.run_to_done(
                                max_cycles=self.max_cycles)
                    else:
                        cycles = design.run_to_done(
                            max_cycles=self.max_cycles)
                    simulate.set("cycles", cycles)
            finally:
                if self.coverage is not None:
                    self.coverage.collect(design)
                design.release()  # retire SRAM ports before reconfiguring
            stats = design.sim.stats.as_dict()
            stats["fsm_transitions"] = design.controller.transitions
            result.runs.append(ConfigurationRun(
                configuration=current,
                cycles=cycles,
                evaluations=design.sim.stats.evaluations,
                final_state=design.controller.state,
                stats=stats,
            ))
            env = {name: signal.value
                   for name, signal in design.output_signals.items()}
            next_configuration = self.control.next_configuration(current, env)
            if next_configuration is not None:
                result.reconfigurations += 1
            current = next_configuration
        return result


@dataclass
class RtgBatchRunResult:
    """Per-lane RTG results plus batch scheduling statistics."""

    lanes: List[RtgRunResult] = field(default_factory=list)
    #: LaneBatch scheduling rounds summed over every configuration group
    rounds: int = 0
    converged_rounds: int = 0
    #: elaborations performed (vs ``batch_size * runs`` for serial)
    elaborations: int = 0

    @property
    def batch_size(self) -> int:
        return len(self.lanes)

    @property
    def lanes_converged(self) -> float:
        if not self.rounds:
            return 1.0
        return self.converged_rounds / self.rounds


class RtgBatchExecutor:
    """Executes one RTG over N reconfiguration contexts in lockstep.

    Each context is an independent *lane*: its own stimulus memories,
    its own RTG trajectory.  Lanes whose next configuration matches are
    grouped, the configuration is elaborated **once** on scratch
    memories, and a :class:`~repro.sim.LaneBatch` advances the whole
    group through that one design — amortizing elaboration, codegen
    binding and settle across the group.  Lanes whose RTG guards pick
    different successors simply land in different groups next round, so
    control-flow divergence costs extra elaborations, never
    correctness.

    Raises :class:`BatchUnsupported` before any lane state changes if
    the design cannot take the batch fast path; callers fall back to
    serial :class:`RtgExecutor` runs with identical semantics.
    """

    def __init__(self, rtg: Rtg,
                 contexts: Sequence[ReconfigurationContext],
                 *,
                 base_dir: Optional[Union[str, Path]] = None,
                 fsm_mode: str = "generated",
                 control_mode: str = "generated",
                 max_cycles_per_configuration: int = 50_000_000,
                 max_reconfigurations: int = 10_000,
                 quantum: int = DEFAULT_QUANTUM) -> None:
        rtg.validate()
        self.rtg = rtg
        self.contexts = list(contexts)
        self.base_dir = Path(base_dir) if base_dir is not None else None
        self.fsm_mode = fsm_mode
        self.backend = "batched"
        self.max_cycles = max_cycles_per_configuration
        self.max_reconfigurations = max_reconfigurations
        self.quantum = quantum
        if control_mode == "generated":
            self.control = compile_rtg(rtg)
        elif control_mode == "interpreted":
            self.control = InterpretedRtgControl(rtg)
        else:
            raise ValueError(
                f"control_mode must be 'generated' or 'interpreted', "
                f"got {control_mode!r}"
            )
        #: observer hook: called with each group's live SimDesign
        self.on_configure = None

    def _resolve(self, ref: ConfigurationRef):
        datapath = ref.datapath
        fsm = ref.fsm
        if datapath is None or fsm is None:
            if self.base_dir is None:
                raise RtgError(
                    f"configuration {ref.name!r} has no attached design "
                    f"and no base_dir to load XML from"
                )
            datapath = datapath or load_datapath(
                self.base_dir / ref.datapath_file)
            fsm = fsm or load_fsm(self.base_dir / ref.fsm_file)
        return datapath, fsm

    def run(self) -> RtgBatchRunResult:
        result = RtgBatchRunResult(
            lanes=[RtgRunResult() for _ in self.contexts])
        current: List[Optional[str]] = [self.control.start] * len(
            self.contexts)
        while True:
            groups: Dict[str, List[int]] = {}
            for lane, name in enumerate(current):
                if name is not None:
                    groups.setdefault(name, []).append(lane)
            if not groups:
                break
            for name in sorted(groups):
                lanes = groups[name]
                for lane in lanes:
                    if len(result.lanes[lane].runs) > \
                            self.max_reconfigurations:
                        raise RtgError(
                            f"lane {lane} exceeded "
                            f"{self.max_reconfigurations} "
                            f"reconfigurations — runaway RTG?"
                        )
                ref = self.rtg.configurations[name]
                datapath, fsm = self._resolve(ref)
                # scratch images: LaneBatch swaps each lane's words in
                # and out of these, so the contexts keep ownership
                scratch = {mem_name: MemoryImage(decl.width, decl.depth,
                                                 name=mem_name)
                           for mem_name, decl in self.rtg.memories.items()}
                with span("rtg.configure", "rtg", configuration=name,
                          batch=len(lanes)):
                    design = build_simulation(
                        datapath, fsm, memories=scratch,
                        fsm_mode=self.fsm_mode, backend=self.backend)
                result.elaborations += 1
                if self.on_configure is not None:
                    self.on_configure(design)
                done = design.done_signal
                if done is None:
                    raise BatchUnsupported(
                        f"configuration {name!r} has no done output")
                batch = LaneBatch(
                    design.sim, done, design.memories,
                    [self.contexts[lane].memories for lane in lanes],
                    sample_signals=design.output_signals,
                    quantum=self.quantum)
                simulate = span("rtg.simulate", "rtg", configuration=name,
                                backend=self.backend, batch=len(lanes))
                try:
                    with simulate:
                        report = batch.run(max_cycles=self.max_cycles)
                        simulate.set("cycles", sum(report.cycles))
                finally:
                    design.release()
                result.rounds += report.rounds
                result.converged_rounds += report.converged_rounds
                for slot, lane in enumerate(lanes):
                    if report.timed_out[slot]:
                        raise SimulationTimeout(
                            f"lane {lane} did not assert done within "
                            f"{self.max_cycles} cycles in configuration "
                            f"{name!r}")
                    stats = {"evaluations": report.evaluations[slot],
                             "fsm_transitions": report.transitions[slot]}
                    result.lanes[lane].runs.append(ConfigurationRun(
                        configuration=name,
                        cycles=report.cycles[slot],
                        evaluations=report.evaluations[slot],
                        final_state=report.final_states[slot],
                        stats=stats,
                    ))
                    env = report.samples[slot]
                    next_configuration = self.control.next_configuration(
                        name, env)
                    if next_configuration is not None:
                        result.lanes[lane].reconfigurations += 1
                    current[lane] = next_configuration
        return result
