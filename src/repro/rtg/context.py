"""Reconfiguration context: memory state that survives reconfiguration.

Temporal partitions communicate through memories declared at RTG level
(the paper's FDCT2 passes an intermediate image from configuration 1 to
configuration 2).  The context owns those :class:`MemoryImage` objects
and hands the same instances to every configuration's elaboration, so a
word written by one partition is simply *there* for the next.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from ..hdl.model.rtg import Rtg
from ..util.files import MemoryImage, load_memory_file

__all__ = ["ReconfigurationContext"]


class ReconfigurationContext:
    """Live memory images for one execution of a multi-partition design."""

    def __init__(self, memories: Optional[Mapping[str, MemoryImage]] = None
                 ) -> None:
        self.memories: Dict[str, MemoryImage] = dict(memories or {})

    @classmethod
    def from_rtg(cls, rtg: Rtg,
                 initial: Optional[Mapping[str, MemoryImage]] = None,
                 init_dir: Optional[Union[str, Path]] = None
                 ) -> "ReconfigurationContext":
        """Bind every RTG-level memory declaration to a live image.

        Priority per memory: caller-supplied image, then the declared
        ``init`` file (resolved against *init_dir*), then a zeroed image.
        """
        context = cls(initial)
        for decl in rtg.memories.values():
            if decl.name in context.memories:
                image = context.memories[decl.name]
                if image.width != decl.width or image.depth != decl.depth:
                    raise ValueError(
                        f"memory {decl.name!r}: supplied image is "
                        f"{image.width}x{image.depth}, RTG declares "
                        f"{decl.width}x{decl.depth}"
                    )
                continue
            if decl.init and init_dir is not None:
                context.memories[decl.name] = load_memory_file(
                    Path(init_dir) / decl.init, name=decl.name)
            else:
                context.memories[decl.name] = MemoryImage(
                    decl.width, decl.depth, name=decl.name)
        return context

    def memory(self, name: str) -> MemoryImage:
        try:
            return self.memories[name]
        except KeyError:
            raise KeyError(
                f"context has no memory {name!r} "
                f"(have: {sorted(self.memories)})"
            ) from None

    def snapshot(self) -> Dict[str, MemoryImage]:
        """Deep copies of every memory (for before/after diffing)."""
        return {name: image.copy() for name, image in self.memories.items()}
