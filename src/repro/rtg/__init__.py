"""Reconfiguration runtime: execute designs through their RTG."""

from .context import ReconfigurationContext
from .executor import ConfigurationRun, RtgExecutor, RtgRunResult

__all__ = ["ReconfigurationContext", "RtgExecutor", "RtgRunResult",
           "ConfigurationRun"]
