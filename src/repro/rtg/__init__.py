"""Reconfiguration runtime: execute designs through their RTG."""

from .context import ReconfigurationContext
from .executor import (ConfigurationRun, RtgBatchExecutor,
                       RtgBatchRunResult, RtgExecutor, RtgRunResult)

__all__ = ["ReconfigurationContext", "RtgExecutor", "RtgRunResult",
           "ConfigurationRun", "RtgBatchExecutor", "RtgBatchRunResult"]
