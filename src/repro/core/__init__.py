"""The test infrastructure core (the paper's contribution).

* stimulus files and deterministic generators
* golden-vs-simulation verification by memory comparison
* the staged build-and-test flow (the ANT substitute)
* the regression suite runner and Table I metrics
* :class:`TestInfrastructure`, the one-object façade
"""

from .cache import (ArtifactCache, case_key, result_from_payload,
                    result_to_payload, structure_key)
from .faults import (CampaignResult, Fault, FaultVerdict, enumerate_faults,
                     inject_fault, run_campaign)
from .flow import Flow, FlowReport, FlowStage, StageResult, standard_flow
from .infrastructure import TestInfrastructure
from .report import (ConfigurationMetrics, DesignMetrics, collect_metrics,
                     format_table)
from .stimulus import (load_stimulus_files, ramp_image, random_words,
                       synthetic_image, write_stimulus_files)
from .kernelcache import batch_group_key
from .testsuite import (CaseResult, SuiteCase, SuiteReport, TestSuite,
                        run_case)
from .verification import (BatchVerificationResult, MemoryCheck,
                           VerificationResult, prepare_images,
                           verify_design, verify_design_batch)

__all__ = [
    "TestInfrastructure",
    "verify_design", "VerificationResult", "MemoryCheck", "prepare_images",
    "verify_design_batch", "BatchVerificationResult", "batch_group_key",
    "TestSuite", "SuiteCase", "SuiteReport", "CaseResult", "run_case",
    "ArtifactCache", "case_key", "structure_key",
    "result_to_payload", "result_from_payload",
    "Flow", "FlowStage", "FlowReport", "StageResult", "standard_flow",
    "collect_metrics", "format_table", "DesignMetrics",
    "ConfigurationMetrics",
    "synthetic_image", "ramp_image", "random_words",
    "write_stimulus_files", "load_stimulus_files",
    "Fault", "FaultVerdict", "CampaignResult",
    "enumerate_faults", "inject_fault", "run_campaign",
]
