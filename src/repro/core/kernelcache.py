"""Persistent codegen cache: generated kernels keyed by design structure.

The compiled/traced simulation backends and the generated-FSM behaviour
pay a per-elaboration code-generation and ``compile()`` cost (tens of
milliseconds on the larger benchmarks).  That cost is pure function of
the *structure* being compiled, so this module caches the generated
source and its marshalled bytecode on disk, keyed by a structural hash
of (datapath, FSM, backend options, coverage flag).  Suite fork-workers,
repeated ``flow`` invocations and fuzz-corpus replays then skip codegen
entirely and ``exec`` the cached code object.

Two layers:

* an in-process memo (reconfiguration loops re-elaborate the same
  configuration many times within one run);
* a disk store under ``$REPRO_KERNEL_CACHE`` (default
  ``~/.cache/repro-kernels``), shared across processes.  Set
  ``REPRO_KERNEL_CACHE=off`` to keep the cache memory-only.

Entries are self-validating: each payload records the cache schema
version and the interpreter's bytecode magic, so a cache directory
shared across Python versions or library upgrades degrades to misses,
never to wrong code.  All disk writes are atomic (tempfile + rename),
all reads treat any corruption as a miss.
"""

from __future__ import annotations

import base64
import hashlib
import importlib.util
import json
import marshal
import os
import tempfile
from pathlib import Path
from types import CodeType
from typing import Dict, Optional, Tuple

__all__ = ["KernelCache", "default_cache", "set_default_cache",
           "digest_parts", "datapath_digest", "fsm_digest",
           "batch_group_key"]

#: bump when the payload schema changes
_SCHEMA_VERSION = 1

#: interpreter bytecode magic, base64 for JSON transport
_MAGIC = base64.b64encode(importlib.util.MAGIC_NUMBER).decode("ascii")


# ----------------------------------------------------------------------
# Structural digests
# ----------------------------------------------------------------------
def digest_parts(*parts) -> str:
    """One stable hex digest over any mix of strings/ints/bools."""
    h = hashlib.sha256()
    for part in parts:
        h.update(str(part).encode("utf-8", "replace"))
        h.update(b"\x1e")
    return h.hexdigest()


def datapath_digest(datapath) -> str:
    """Hash everything about a datapath that code generation can see.

    Memoised on the model object (``_digest_memo``): re-elaborating the
    same design — the benchmark harness and the parallel suite runner
    both do, many times — must not re-walk a few hundred declarations
    per run.  The model's mutators clear the memo.
    """
    memo = getattr(datapath, "_digest_memo", None)
    if memo is not None:
        return memo
    h = hashlib.sha256()

    def w(*fields) -> None:
        h.update("\x1f".join(map(str, fields)).encode("utf-8", "replace"))
        h.update(b"\x1e")

    w("dp", datapath.name, datapath.width)
    for comp in datapath.components.values():
        w("comp", comp.name, comp.type, comp.width,
          sorted(comp.params.items()))
    for net in datapath.nets.values():
        w("net", net.name, net.width, net.source,
          ";".join(map(str, net.sinks)))
    for line in datapath.controls.values():
        w("ctl", line.name, line.width, ";".join(map(str, line.targets)))
    for status in datapath.statuses.values():
        w("status", status.name, status.source)
    for mem in datapath.memories.values():
        w("mem", mem.name, mem.width, mem.depth, mem.init, mem.role)
    digest = h.hexdigest()
    try:
        datapath._digest_memo = digest
    except AttributeError:  # duck-typed stand-ins without a dict
        pass
    return digest


def fsm_digest(fsm) -> str:
    """Hash the FSM semantics: vectors, guards, targets, finals.

    Memoised like :func:`datapath_digest`; ``Fsm`` mutators and the
    ``State`` helpers clear the memo through the state's owner link.
    """
    memo = getattr(fsm, "_digest_memo", None)
    if memo is not None:
        return memo
    h = hashlib.sha256()

    def w(*fields) -> None:
        h.update("\x1f".join(map(str, fields)).encode("utf-8", "replace"))
        h.update(b"\x1e")

    w("fsm", fsm.name, fsm.reset_state, sorted(fsm.final_states),
      list(fsm.inputs))
    for decl in fsm.outputs.values():
        w("out", decl.name, decl.width, decl.default)
    for state in fsm.states.values():
        w("state", state.name, sorted(state.assigns.items()))
        for transition in state.transitions:
            w("tr", transition.condition.to_python(), transition.target)
    digest = h.hexdigest()
    try:
        fsm._digest_memo = digest
    except AttributeError:
        pass
    return digest


def batch_group_key(datapath, fsm, fsm_mode: str = "generated") -> str:
    """Public grouping key: runs with equal keys share generated code.

    Two (datapath, FSM) pairs with the same key elaborate to the same
    kernel, so their stimulus sets can advance through **one** batch
    (see :mod:`repro.sim.batched`) — this is how the fuzz harness folds
    a wave's structurally-identical programs into shared batches.  The
    key is derived from the same memoised structural digests the kernel
    cache itself uses, so any model mutation that would invalidate the
    cached kernel (the mutators clear ``_digest_memo``) changes the
    group key too — stale grouping is impossible by construction.
    """
    return digest_parts("batch-group-v1", datapath_digest(datapath),
                        fsm_digest(fsm), fsm_mode)


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
class KernelCache:
    """Two-layer (memory + disk) store for generated-code payloads.

    A payload is a JSON-serialisable dict; the associated code object is
    transported as marshalled bytes under the reserved ``"code"`` key.
    ``get`` returns ``(payload, code)`` and never raises — corruption,
    version skew and I/O errors are all misses.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        #: ``None`` root means memory-only
        self.root = Path(root) if root is not None else None
        self._memory: Dict[Tuple[str, str],
                           Tuple[dict, Optional[CodeType]]] = {}
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0

    # ------------------------------------------------------------------
    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / f"{key}.json"

    def get(self, kind: str, key: str
            ) -> Tuple[Optional[dict], Optional[CodeType]]:
        cached = self._memory.get((kind, key))
        if cached is not None:
            self.memory_hits += 1
            return cached
        if self.root is None:
            self.misses += 1
            return None, None
        try:
            raw = self._path(kind, key).read_text()
        except OSError:
            self.misses += 1
            return None, None
        try:
            payload = json.loads(raw)
            if payload.get("v") != _SCHEMA_VERSION \
                    or payload.get("magic") != _MAGIC:
                self.misses += 1
                return None, None
            blob = payload.pop("code", None)
            code = (marshal.loads(base64.b64decode(blob))
                    if blob is not None else None)
        except Exception:  # noqa: BLE001 - any corruption is a miss
            self.errors += 1
            self.misses += 1
            return None, None
        self.disk_hits += 1
        self._memory[(kind, key)] = (payload, code)
        return payload, code

    def put(self, kind: str, key: str, payload: dict,
            code: Optional[CodeType] = None) -> None:
        payload = dict(payload)
        payload["v"] = _SCHEMA_VERSION
        payload["magic"] = _MAGIC
        self._memory[(kind, key)] = (payload, code)
        self.stores += 1
        if self.root is None:
            return
        on_disk = dict(payload)
        if code is not None:
            on_disk["code"] = base64.b64encode(
                marshal.dumps(code)).decode("ascii")
        try:
            path = self._path(kind, key)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(on_disk, handle)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # unwritable cache dir: degrade to memory-only for this entry
            self.errors += 1

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop the memory layer and every on-disk entry, including
        ``*.tmp`` staging files orphaned by writers killed mid-
        :func:`os.replace` (they are invisible to lookups but would
        otherwise accumulate forever)."""
        self._memory.clear()
        if self.root is None or not self.root.exists():
            return
        for pattern in ("*/*.json", "*/*.tmp", "*.tmp"):
            for path in self.root.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    self.errors += 1

    def summary(self) -> Dict[str, object]:
        return {
            "root": str(self.root) if self.root is not None else None,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
        }

    def describe(self) -> str:
        info = self.summary()
        where = info["root"] or "memory-only"
        return (f"kernel cache [{where}]: "
                f"{info['memory_hits']} memory hit(s), "
                f"{info['disk_hits']} disk hit(s), "
                f"{info['misses']} miss(es), {info['stores']} store(s)")


# ----------------------------------------------------------------------
# Process-wide default
# ----------------------------------------------------------------------
_default: Optional[KernelCache] = None


def _default_root() -> Optional[Path]:
    configured = os.environ.get("REPRO_KERNEL_CACHE")
    if configured is not None:
        if configured.strip().lower() in ("off", "0", "none", ""):
            return None
        return Path(configured)
    return Path.home() / ".cache" / "repro-kernels"


def default_cache() -> KernelCache:
    """The process-wide cache (created on first use; fork-safe, since
    children inherit the memory layer and share the disk layer)."""
    global _default
    if _default is None:
        _default = KernelCache(_default_root())
    return _default


def set_default_cache(cache: Optional[KernelCache]) -> Optional[KernelCache]:
    """Swap the process-wide cache (tests use this to isolate); returns
    the previous one."""
    global _default
    previous = _default
    _default = cache
    return previous
