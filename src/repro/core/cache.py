"""Content-hash artifact cache for suite verification results.

The paper's scenario is re-running the whole benchmark suite after every
compiler change.  Most changes affect only some designs; the rest would
recompile and re-simulate to the exact same verdict.  The cache keys a
case by everything that determines its outcome — the algorithm's source
text, the memory specifications, the compile options, the stimulus seed
and the execution options — so an unchanged case is answered from disk
and only affected designs are re-run.

Only *passing* results are cached: failures must re-execute every time so
their diagnostics (mismatch triples, error messages) stay live, and so a
fixed compiler immediately re-verifies them.

Entries are single JSON files named by the SHA-256 of the key material,
safe for concurrent writers (atomic rename) and trivially inspectable.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from ..obs.coverage import CoverageReport
from .report import ConfigurationMetrics, DesignMetrics
from .verification import MemoryCheck, VerificationResult

__all__ = ["ArtifactCache"]

#: bump when the cached payload layout or run semantics change
_CACHE_VERSION = 2


def _function_fingerprint(func) -> str:
    """Source text of *func* — the compiler input the cache key guards."""
    try:
        return inspect.getsource(func)
    except (OSError, TypeError):
        # no retrievable source (REPL lambdas, builtins): fall back to
        # identity, which under-caches but never falsely hits
        return f"{getattr(func, '__module__', '?')}." \
               f"{getattr(func, '__qualname__', repr(func))}"


class ArtifactCache:
    """Directory-backed result cache keyed by case content."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise NotADirectoryError(
                f"cache path {self.root} exists and is not a directory")
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # -- keys -----------------------------------------------------------
    def key_for(self, case, *, seed: int, fsm_mode: str,
                backend: str, coverage: bool = False,
                batch: int = 0) -> str:
        """SHA-256 over everything that determines the case outcome."""
        material = {
            "version": _CACHE_VERSION,
            "coverage": bool(coverage),
            "batch": int(batch),
            "name": case.name,
            "source": _function_fingerprint(case.func),
            "arrays": {
                name: [spec.width, spec.depth, spec.signed, spec.role]
                for name, spec in sorted(case.arrays.items())
            },
            "params": {str(k): int(v)
                       for k, v in sorted(case.params.items())},
            "n_partitions": case.n_partitions,
            "word_width": case.word_width,
            "opt_level": case.opt_level,
            "max_cycles": case.max_cycles,
            "seed": seed,
            "fsm_mode": fsm_mode,
            "backend": backend,
        }
        blob = json.dumps(material, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- load / store ---------------------------------------------------
    def load(self, key: str):
        """The cached :class:`CaseResult` for *key*, or ``None``."""
        from .testsuite import CaseResult

        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if payload.get("version") != _CACHE_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        v = payload["verification"]
        coverage = v.get("coverage")
        verification = VerificationResult(
            design=v["design"],
            checks=[MemoryCheck(c["memory"], c["role"], c["words"])
                    for c in v["checks"]],
            cycles=v["cycles"],
            reconfigurations=v["reconfigurations"],
            golden_seconds=v["golden_seconds"],
            simulation_seconds=v["simulation_seconds"],
            evaluations=v["evaluations"],
            backend=v["backend"],
            coverage=(CoverageReport.from_dict(coverage)
                      if coverage is not None else None),
        )
        m = payload["metrics"]
        metrics = DesignMetrics(
            name=m["name"],
            lo_source=m["lo_source"],
            configurations=[ConfigurationMetrics(**c)
                            for c in m["configurations"]],
            simulation_seconds=m["simulation_seconds"],
            cycles=m["cycles"],
            backend=m.get("backend"),
            state_coverage=m.get("state_coverage"),
        )
        return CaseResult(
            case=payload["case"],
            verification=verification,
            metrics=metrics,
            compile_seconds=payload["compile_seconds"],
            cached=True,
        )

    def store(self, key: str, result) -> bool:
        """Persist *result* if it is a cacheable pass; returns stored?"""
        if not result.passed or result.verification is None \
                or result.metrics is None:
            return False
        v = result.verification
        m = result.metrics
        payload = {
            "version": _CACHE_VERSION,
            "case": result.case,
            "compile_seconds": result.compile_seconds,
            "verification": {
                "design": v.design,
                "checks": [{"memory": c.memory, "role": c.role,
                            "words": c.words} for c in v.checks],
                "cycles": v.cycles,
                "reconfigurations": v.reconfigurations,
                "golden_seconds": v.golden_seconds,
                "simulation_seconds": v.simulation_seconds,
                "evaluations": v.evaluations,
                "backend": v.backend,
                "coverage": (v.coverage.as_dict()
                             if v.coverage is not None else None),
            },
            "metrics": {
                "name": m.name,
                "lo_source": m.lo_source,
                "configurations": [vars(c) for c in m.configurations],
                "simulation_seconds": m.simulation_seconds,
                "cycles": m.cycles,
                "backend": m.backend,
                "state_coverage": m.state_coverage,
            },
        }
        path = self._path(key)
        handle, staging = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(payload, stream)
            os.replace(staging, path)
        except OSError:
            try:
                os.unlink(staging)
            except OSError:
                pass
            return False
        return True

    def summary(self) -> str:
        """One-line hit/miss account, printed when ``--cache`` is active."""
        total = self.hits + self.misses
        rate = f", {100 * self.hits / total:.0f}% hit rate" if total else ""
        entries = sum(1 for _ in self.root.glob("*.json"))
        return (f"cache: {self.hits} hit(s), {self.misses} miss(es)"
                f"{rate}, {entries} entr(ies) in {self.root}")

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
