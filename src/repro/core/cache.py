"""Content-hash artifact cache for suite verification results.

The paper's scenario is re-running the whole benchmark suite after every
compiler change.  Most changes affect only some designs; the rest would
recompile and re-simulate to the exact same verdict.  The cache keys a
case by everything that determines its outcome — the algorithm's source
text, the memory specifications, the compile options, the stimulus seed
and the execution options — so an unchanged case is answered from disk
and only affected designs are re-run.

Only *passing* results are cached: failures must re-execute every time so
their diagnostics (mismatch triples, error messages) stay live, and so a
fixed compiler immediately re-verifies them.

Entries are single JSON files named by the SHA-256 of the key material,
safe for concurrent writers (atomic rename) and trivially inspectable.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from ..obs.coverage import CoverageReport
from .report import ConfigurationMetrics, DesignMetrics
from .verification import MemoryCheck, VerificationResult

__all__ = ["ArtifactCache", "case_key", "structure_key",
           "result_to_payload", "result_from_payload"]

#: bump when the cached payload layout or run semantics change
_CACHE_VERSION = 2


def _function_fingerprint(func) -> str:
    """Source text of *func* — the compiler input the cache key guards."""
    try:
        return inspect.getsource(func)
    except (OSError, TypeError):
        # no retrievable source (REPL lambdas, builtins): fall back to
        # identity, which under-caches but never falsely hits
        return f"{getattr(func, '__module__', '?')}." \
               f"{getattr(func, '__qualname__', repr(func))}"


def _structure_material(case) -> dict:
    """Everything that determines the *compiled structure* of a case —
    the algorithm source plus the compile options, but not the stimulus
    seed or the simulation backend."""
    return {
        "name": case.name,
        "source": _function_fingerprint(case.func),
        "arrays": {
            name: [spec.width, spec.depth, spec.signed, spec.role]
            for name, spec in sorted(case.arrays.items())
        },
        "params": {str(k): int(v)
                   for k, v in sorted(case.params.items())},
        "n_partitions": case.n_partitions,
        "word_width": case.word_width,
        "opt_level": case.opt_level,
    }


def case_key(case, *, seed: int, fsm_mode: str, backend: str,
             coverage: bool = False, batch: int = 0) -> str:
    """SHA-256 over everything that determines a case's outcome.

    This is *the* content-hash artifact digest: the artifact cache
    names its entries with it and the serve scheduler deduplicates and
    coalesces jobs by it, so both layers agree by construction on what
    "the same verification" means.  Any mutation of the design — a
    changed source line, a resized array, a different compile option —
    produces a different key, which is why dedup can never serve a
    stale artifact.
    """
    material = dict(_structure_material(case))
    material.update({
        "version": _CACHE_VERSION,
        "coverage": bool(coverage),
        "batch": int(batch),
        "max_cycles": case.max_cycles,
        "seed": seed,
        "fsm_mode": fsm_mode,
        "backend": backend,
    })
    blob = json.dumps(material, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def structure_key(case, *, fsm_mode: str = "generated") -> str:
    """Digest of the case's compiled structure only (no seed/backend).

    Jobs that share a structure key compile to the same design and so
    elaborate to kernels sharing the same
    :func:`repro.core.kernelcache.batch_group_key` — the serve
    scheduler uses this to shard same-structure jobs onto the same warm
    worker and to group them into one batched dispatch.
    """
    material = dict(_structure_material(case))
    material["fsm_mode"] = fsm_mode
    blob = json.dumps(material, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# Result <-> JSON payload codecs, shared by the artifact cache and the
# serve wire protocol (results must survive a socket exactly as they
# survive a cache file)
# ----------------------------------------------------------------------
def result_to_payload(result) -> dict:
    """Serialize a :class:`CaseResult` to a JSON-safe dict.

    Unlike cache entries — which only ever hold passes — the payload
    carries failure diagnostics too (mismatch triples, error text), so
    the serve protocol can stream any verdict through it.
    """
    v = result.verification
    m = result.metrics
    payload = {
        "version": _CACHE_VERSION,
        "case": result.case,
        "compile_seconds": result.compile_seconds,
        "error": result.error,
        "traceback": result.traceback,
        "verification": None,
        "metrics": None,
    }
    if v is not None:
        payload["verification"] = {
            "design": v.design,
            "checks": [{"memory": c.memory, "role": c.role,
                        "words": c.words,
                        "mismatches": [[mm.address, mm.expected, mm.actual]
                                       for mm in c.mismatches]}
                       for c in v.checks],
            "cycles": v.cycles,
            "reconfigurations": v.reconfigurations,
            "golden_seconds": v.golden_seconds,
            "simulation_seconds": v.simulation_seconds,
            "evaluations": v.evaluations,
            "backend": v.backend,
            "coverage": (v.coverage.as_dict()
                         if v.coverage is not None else None),
        }
    if m is not None:
        payload["metrics"] = {
            "name": m.name,
            "lo_source": m.lo_source,
            "configurations": [vars(c) for c in m.configurations],
            "simulation_seconds": m.simulation_seconds,
            "cycles": m.cycles,
            "backend": m.backend,
            "state_coverage": m.state_coverage,
        }
    return payload


def result_from_payload(payload: dict, *, cached: bool = False):
    """Rebuild a :class:`CaseResult` from :func:`result_to_payload`."""
    from ..util.files import MemoryMismatch
    from .testsuite import CaseResult

    verification = None
    v = payload.get("verification")
    if v is not None:
        coverage = v.get("coverage")
        verification = VerificationResult(
            design=v["design"],
            checks=[MemoryCheck(
                c["memory"], c["role"], c["words"],
                mismatches=[MemoryMismatch(*mm)
                            for mm in c.get("mismatches", [])])
                for c in v["checks"]],
            cycles=v["cycles"],
            reconfigurations=v["reconfigurations"],
            golden_seconds=v["golden_seconds"],
            simulation_seconds=v["simulation_seconds"],
            evaluations=v["evaluations"],
            backend=v["backend"],
            coverage=(CoverageReport.from_dict(coverage)
                      if coverage is not None else None),
        )
    metrics = None
    m = payload.get("metrics")
    if m is not None:
        metrics = DesignMetrics(
            name=m["name"],
            lo_source=m["lo_source"],
            configurations=[ConfigurationMetrics(**c)
                            for c in m["configurations"]],
            simulation_seconds=m["simulation_seconds"],
            cycles=m["cycles"],
            backend=m.get("backend"),
            state_coverage=m.get("state_coverage"),
        )
    return CaseResult(
        case=payload["case"],
        verification=verification,
        metrics=metrics,
        compile_seconds=payload["compile_seconds"],
        error=payload.get("error"),
        traceback=payload.get("traceback"),
        cached=cached,
    )


class ArtifactCache:
    """Directory-backed result cache keyed by case content."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise NotADirectoryError(
                f"cache path {self.root} exists and is not a directory")
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # -- keys -----------------------------------------------------------
    def key_for(self, case, *, seed: int, fsm_mode: str,
                backend: str, coverage: bool = False,
                batch: int = 0) -> str:
        """SHA-256 over everything that determines the case outcome
        (see :func:`case_key`, which this delegates to)."""
        return case_key(case, seed=seed, fsm_mode=fsm_mode,
                        backend=backend, coverage=coverage, batch=batch)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- load / store ---------------------------------------------------
    def load(self, key: str):
        """The cached :class:`CaseResult` for *key*, or ``None``."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if payload.get("version") != _CACHE_VERSION \
                or payload.get("metrics") is None \
                or payload.get("verification") is None:
            self.misses += 1
            return None
        self.hits += 1
        return result_from_payload(payload, cached=True)

    def store(self, key: str, result) -> bool:
        """Persist *result* if it is a cacheable pass; returns stored?"""
        if not result.passed or result.verification is None \
                or result.metrics is None:
            return False
        payload = result_to_payload(result)
        path = self._path(key)
        handle, staging = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(payload, stream)
            os.replace(staging, path)
        except OSError:
            try:
                os.unlink(staging)
            except OSError:
                pass
            return False
        return True

    def summary(self) -> str:
        """One-line hit/miss account, printed when ``--cache`` is active."""
        total = self.hits + self.misses
        rate = f", {100 * self.hits / total:.0f}% hit rate" if total else ""
        entries = sum(1 for _ in self.root.glob("*.json"))
        return (f"cache: {self.hits} hit(s), {self.misses} miss(es)"
                f"{rate}, {entries} entr(ies) in {self.root}")

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
