"""Deterministic stimulus generation and stimulus-file handling.

"Memory contents and I/O data are stored in files" (paper §2): the same
files feed the golden software execution and the hardware simulation.
Everything here is seeded — no run-to-run variation.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Union

from ..util.files import MemoryImage, save_memory_file

__all__ = ["random_words", "synthetic_image", "ramp_image",
           "write_stimulus_files", "load_stimulus_files"]


def random_words(depth: int, width: int, *, seed: int,
                 low: int = 0, high: Optional[int] = None,
                 name: str = "mem") -> MemoryImage:
    """A memory of uniform random words in ``[low, high]`` (inclusive)."""
    if high is None:
        high = (1 << width) - 1
    rng = random.Random(seed)
    words = [rng.randint(low, high) for _ in range(depth)]
    return MemoryImage(width, depth, words=words, name=name)


def synthetic_image(pixels: int, *, seed: int, width: int = 16,
                    max_value: int = 255,
                    name: str = "image") -> MemoryImage:
    """A deterministic grayscale test image of *pixels* samples.

    A smooth gradient plus seeded noise: more realistic spectral content
    for DCT-style workloads than pure noise, still fully reproducible.
    """
    rng = random.Random(seed)
    words: List[int] = []
    for index in range(pixels):
        gradient = (index * max_value) // max(pixels - 1, 1)
        noise = rng.randint(-24, 24)
        words.append(min(max(gradient // 2 + noise + max_value // 4, 0),
                         max_value))
    return MemoryImage(width, pixels, words=words, name=name)


def ramp_image(pixels: int, *, width: int = 16, step: int = 1,
               name: str = "ramp") -> MemoryImage:
    """A simple wrapping ramp — handy for debugging address paths."""
    mask = (1 << width) - 1
    return MemoryImage(width, pixels,
                       words=[(index * step) & mask
                              for index in range(pixels)],
                       name=name)


def write_stimulus_files(directory: Union[str, Path],
                         images: Mapping[str, MemoryImage],
                         *, sparse: bool = False) -> Dict[str, Path]:
    """Write one ``<name>.mem`` per image; returns the path map."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: Dict[str, Path] = {}
    for name, image in images.items():
        path = directory / f"{name}.mem"
        save_memory_file(image, path, sparse=sparse)
        paths[name] = path
    return paths


def load_stimulus_files(directory: Union[str, Path],
                        names: Iterable[str]) -> Dict[str, MemoryImage]:
    """Load ``<name>.mem`` for each requested name."""
    directory = Path(directory)
    return {name: MemoryImage.load(directory / f"{name}.mem", name=name)
            for name in names}
