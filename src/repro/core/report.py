"""Design metrics and the Table I report format.

The paper's Table I reports, per example: lines of input source
(``loJava``), lines of the XML FSM and datapath descriptions, lines of
the generated FSM code (``loJava FSM``), the number of datapath
operators, and the simulation time.  :func:`collect_metrics` computes the
same quantities for a compiled :class:`Design`; multi-configuration
designs report one value per configuration, stacked like the paper's
FDCT2 row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..compiler.pipeline import Design
from ..hdl.xmlio.datapath_xml import write_datapath
from ..hdl.xmlio.fsm_xml import write_fsm
from ..translate.to_python import fsm_to_python
from ..util.loc import count_lines

__all__ = ["ConfigurationMetrics", "DesignMetrics", "collect_metrics",
           "format_table"]


@dataclass
class ConfigurationMetrics:
    """Table I columns for one configuration."""

    name: str
    lo_xml_fsm: int
    lo_xml_datapath: int
    lo_generated_fsm: int
    operators: int
    states: int


@dataclass
class DesignMetrics:
    """Table I row (or stacked rows) for one design."""

    name: str
    lo_source: int
    configurations: List[ConfigurationMetrics] = field(default_factory=list)
    simulation_seconds: Optional[float] = None
    cycles: Optional[int] = None
    #: which simulation kernel produced ``simulation_seconds``
    backend: Optional[str] = None
    #: aggregate FSM state coverage (0..1) when coverage was collected
    state_coverage: Optional[float] = None

    def total_operators(self) -> int:
        return sum(c.operators for c in self.configurations)


def collect_metrics(design: Design,
                    simulation_seconds: Optional[float] = None,
                    cycles: Optional[int] = None,
                    backend: Optional[str] = None,
                    state_coverage: Optional[float] = None) -> DesignMetrics:
    """Compute the Table I quantities for *design*."""
    metrics = DesignMetrics(
        name=design.name,
        lo_source=count_lines(design.source),
        simulation_seconds=simulation_seconds,
        cycles=cycles,
        backend=backend,
        state_coverage=state_coverage,
    )
    for config in design.configurations:
        metrics.configurations.append(ConfigurationMetrics(
            name=config.name,
            lo_xml_fsm=count_lines(write_fsm(config.fsm)),
            lo_xml_datapath=count_lines(write_datapath(config.datapath)),
            lo_generated_fsm=count_lines(fsm_to_python(config.fsm)),
            operators=config.datapath.operator_count(),
            states=config.fsm.state_count(),
        ))
    return metrics


_HEADER = ("Example", "loSource", "loXML FSM", "loXML datapath",
           "loGen FSM", "Operators", "States", "Sim time (s)")
_OPTIONAL_COLUMNS = ("Backend", "FSM cov (%)")


def format_table(rows: Sequence[DesignMetrics]) -> str:
    """Render metrics in the layout of the paper's Table I.

    Multi-configuration designs occupy one line per configuration, with
    the design-level columns only on the first line — exactly how the
    paper prints FDCT2.  The measured columns the paper reports but we
    previously dropped — which kernel produced the simulation time, and
    FSM state coverage — appear when any row carries them.
    """
    with_backend = any(m.backend is not None for m in rows)
    with_coverage = any(m.state_coverage is not None for m in rows)
    header = list(_HEADER)
    if with_backend:
        header.append(_OPTIONAL_COLUMNS[0])
    if with_coverage:
        header.append(_OPTIONAL_COLUMNS[1])
    table: List[List[str]] = [header]
    for metrics in rows:
        for index, config in enumerate(metrics.configurations):
            first = index == 0
            sim_time = ""
            if first and metrics.simulation_seconds is not None:
                seconds = metrics.simulation_seconds
                sim_time = f"{seconds:.3f}" if seconds < 10 else \
                    f"{seconds:.1f}"
            row = [
                metrics.name if first else "",
                str(metrics.lo_source) if first else "",
                str(config.lo_xml_fsm),
                str(config.lo_xml_datapath),
                str(config.lo_generated_fsm),
                str(config.operators),
                str(config.states),
                sim_time,
            ]
            if with_backend:
                row.append(metrics.backend
                           if first and metrics.backend is not None else "")
            if with_coverage:
                row.append(f"{100 * metrics.state_coverage:.1f}"
                           if first and metrics.state_coverage is not None
                           else "")
            table.append(row)
    widths = [max(len(row[col]) for row in table)
              for col in range(len(header))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
