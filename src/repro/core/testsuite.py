"""The regression test suite runner.

The paper's motivation: after every compiler change, re-verify the whole
set of benchmark algorithms "in feasible time" with full automation.
A :class:`TestSuite` holds :class:`SuiteCase` entries (algorithm +
memory specs + stimulus factory + compile options) and runs each through
:func:`verify_design`, collecting a pass/fail report plus the Table I
metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional

from ..compiler.pipeline import Design, compile_function
from ..compiler.spec import MemorySpec
from ..util.files import MemoryImage
from .report import DesignMetrics, collect_metrics, format_table
from .verification import VerificationResult, verify_design

__all__ = ["SuiteCase", "CaseResult", "SuiteReport", "TestSuite"]


@dataclass
class SuiteCase:
    """One benchmark algorithm with everything needed to verify it."""

    name: str
    func: Callable
    arrays: Mapping[str, MemorySpec]
    params: Mapping[str, int] = field(default_factory=dict)
    #: seeded factory producing the input images for one run
    inputs: Optional[Callable[[int], Mapping[str, MemoryImage]]] = None
    n_partitions: int = 1
    word_width: int = 32
    opt_level: int = 2
    max_cycles: int = 50_000_000

    def compile(self) -> Design:
        return compile_function(
            self.func, self.arrays, dict(self.params), name=self.name,
            word_width=self.word_width, opt_level=self.opt_level,
            n_partitions=self.n_partitions,
        )


@dataclass
class CaseResult:
    """Outcome of one case: verification verdict + metrics + timings."""

    case: str
    verification: Optional[VerificationResult]
    metrics: Optional[DesignMetrics]
    compile_seconds: float
    error: Optional[str] = None

    @property
    def passed(self) -> bool:
        return self.error is None and self.verification is not None \
            and self.verification.passed


@dataclass
class SuiteReport:
    results: List[CaseResult] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> List[CaseResult]:
        return [result for result in self.results if not result.passed]

    def metrics_table(self) -> str:
        rows = [result.metrics for result in self.results
                if result.metrics is not None]
        return format_table(rows)

    def summary(self) -> str:
        lines = [
            f"suite: {len(self.results)} case(s), "
            f"{len(self.failures)} failure(s), "
            f"wall {self.wall_seconds:.2f}s",
        ]
        for result in self.results:
            if result.error is not None:
                lines.append(f"  [ERROR] {result.case}: {result.error}")
            else:
                verdict = "PASS" if result.passed else "FAIL"
                v = result.verification
                lines.append(
                    f"  [{verdict}] {result.case}: {v.cycles} cycles, "
                    f"sim {v.simulation_seconds:.3f}s"
                )
        return "\n".join(lines)


class TestSuite:
    """Register cases, run them all, get one report."""

    __test__ = False  # library class, not a pytest test case

    def __init__(self, name: str = "suite") -> None:
        self.name = name
        self.cases: List[SuiteCase] = []

    def add(self, case: SuiteCase) -> SuiteCase:
        if any(existing.name == case.name for existing in self.cases):
            raise ValueError(f"duplicate case name {case.name!r}")
        self.cases.append(case)
        return case

    def run(self, *, seed: int = 0, fsm_mode: str = "generated",
            stop_on_failure: bool = False) -> SuiteReport:
        report = SuiteReport()
        suite_started = time.perf_counter()
        for case in self.cases:
            started = time.perf_counter()
            try:
                design = case.compile()
                compile_seconds = time.perf_counter() - started
                inputs = case.inputs(seed) if case.inputs else None
                verification = verify_design(
                    design, case.func, inputs, fsm_mode=fsm_mode,
                    max_cycles=case.max_cycles,
                )
                metrics = collect_metrics(
                    design,
                    simulation_seconds=verification.simulation_seconds,
                    cycles=verification.cycles,
                )
                report.results.append(CaseResult(
                    case.name, verification, metrics, compile_seconds,
                ))
            except Exception as exc:  # noqa: BLE001 - suite must report
                report.results.append(CaseResult(
                    case.name, None, None,
                    time.perf_counter() - started, error=str(exc),
                ))
            if stop_on_failure and not report.results[-1].passed:
                break
        report.wall_seconds = time.perf_counter() - suite_started
        return report
