"""The regression test suite runner.

The paper's motivation: after every compiler change, re-verify the whole
set of benchmark algorithms "in feasible time" with full automation.
A :class:`TestSuite` holds :class:`SuiteCase` entries (algorithm +
memory specs + stimulus factory + compile options) and runs each through
:func:`verify_design`, collecting a pass/fail report plus the Table I
metrics.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Mapping, Optional, Union

from ..compiler.pipeline import Design, compile_function
from ..compiler.spec import MemorySpec
from ..obs.coverage import CoverageReport
from ..obs.trace import span
from ..util.files import MemoryImage
from .cache import ArtifactCache
from .report import DesignMetrics, collect_metrics, format_table
from .verification import (VerificationResult, verify_design,
                           verify_design_batch)

__all__ = ["SuiteCase", "CaseResult", "SuiteReport", "TestSuite",
           "run_case"]


@dataclass
class SuiteCase:
    """One benchmark algorithm with everything needed to verify it."""

    name: str
    func: Callable
    arrays: Mapping[str, MemorySpec]
    params: Mapping[str, int] = field(default_factory=dict)
    #: seeded factory producing the input images for one run
    inputs: Optional[Callable[[int], Mapping[str, MemoryImage]]] = None
    n_partitions: int = 1
    word_width: int = 32
    opt_level: int = 2
    max_cycles: int = 50_000_000

    def compile(self) -> Design:
        return compile_function(
            self.func, self.arrays, dict(self.params), name=self.name,
            word_width=self.word_width, opt_level=self.opt_level,
            n_partitions=self.n_partitions,
        )


@dataclass
class CaseResult:
    """Outcome of one case: verification verdict + metrics + timings."""

    case: str
    #: a VerificationResult, or a BatchVerificationResult when the
    #: suite ran in batched per-app mode (same passed/cycles surface)
    verification: Optional[VerificationResult]
    metrics: Optional[DesignMetrics]
    compile_seconds: float
    error: Optional[str] = None
    #: full traceback text of the error, preserved across the process
    #: pool boundary so a worker failure is debuggable from the parent
    traceback: Optional[str] = None
    #: result answered from the artifact cache, not executed this run
    cached: bool = False

    @property
    def passed(self) -> bool:
        return self.error is None and self.verification is not None \
            and self.verification.passed


@dataclass
class SuiteReport:
    results: List[CaseResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    backend: str = "event"
    jobs: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    #: merged functional coverage across all cases (``coverage=True``)
    coverage: Optional[CoverageReport] = None

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> List[CaseResult]:
        return [result for result in self.results if not result.passed]

    def metrics_table(self) -> str:
        rows = [result.metrics for result in self.results
                if result.metrics is not None]
        return format_table(rows)

    def summary(self) -> str:
        head = (f"suite: {len(self.results)} case(s), "
                f"{len(self.failures)} failure(s), "
                f"wall {self.wall_seconds:.2f}s "
                f"(backend={self.backend}, jobs={self.jobs}")
        if self.cache_hits:
            head += f", {self.cache_hits} cached"
        lines = [head + ")"]
        for result in self.results:
            if result.error is not None:
                lines.append(f"  [ERROR] {result.case}: {result.error}")
            else:
                verdict = "PASS" if result.passed else "FAIL"
                v = result.verification
                line = (
                    f"  [{verdict}] {result.case}: {v.cycles} cycles, "
                    f"{v.evaluations} evaluations, "
                    f"sim {v.simulation_seconds:.3f}s, "
                    f"compile {result.compile_seconds:.3f}s"
                )
                batch_size = getattr(v, "batch_size", None)
                if batch_size:
                    line += (f" (batch of {batch_size}, "
                             f"{v.lane_seconds * 1000:.1f}ms/lane)")
                if result.cached:
                    line += " (cached)"
                lines.append(line)
        if self.coverage is not None:
            lines.append("  " + self.coverage.summary())
        return "\n".join(lines)


def run_case(case: SuiteCase, *, seed: int, fsm_mode: str = "generated",
             backend: str = "event", coverage: bool = False,
             batch: int = 0) -> CaseResult:
    """Compile + verify one case; never raises (errors become results).

    This is the unit of work everything schedules: the suite runner's
    serial loop and fork pool, and the serve workers
    (:mod:`repro.serve`) all execute jobs through this one function, so
    a verdict is the same object no matter which entry point produced
    it.  ``batch`` > 1 verifies that many seeded stimulus sets
    (``seed`` .. ``seed + batch - 1``) through one batched simulation
    and returns a result whose verification quacks like a
    :class:`~repro.core.verification.BatchVerificationResult`.
    """
    started = time.perf_counter()
    case_span = span("suite.case", "suite", case=case.name, backend=backend)
    with case_span:
        try:
            design = case.compile()
            compile_seconds = time.perf_counter() - started
            if batch > 1:
                if case.inputs is None:
                    raise ValueError(
                        f"case {case.name!r} has no seeded stimulus "
                        f"factory; batched mode needs one input set "
                        f"per lane")
                inputs_list = [case.inputs(seed + lane)
                               for lane in range(batch)]
                verification = verify_design_batch(
                    design, case.func, inputs_list, fsm_mode=fsm_mode,
                    max_cycles=case.max_cycles,
                )
                case_span.set("batch", batch)
            else:
                inputs = case.inputs(seed) if case.inputs else None
                verification = verify_design(
                    design, case.func, inputs, fsm_mode=fsm_mode,
                    backend=backend, max_cycles=case.max_cycles,
                    coverage=coverage,
                )
            metrics = collect_metrics(
                design,
                simulation_seconds=verification.simulation_seconds,
                cycles=verification.cycles,
                backend=backend,
                state_coverage=(verification.coverage.state_coverage
                                if verification.coverage is not None
                                else None),
            )
            case_span.set("passed", verification.passed)
            return CaseResult(case.name, verification, metrics,
                              compile_seconds)
        except Exception as exc:  # noqa: BLE001 - suite must report
            case_span.set("error", str(exc))
            return CaseResult(case.name, None, None,
                              time.perf_counter() - started, error=str(exc),
                              traceback=traceback.format_exc())


# historical private name, still the indirection point the suite's
# serial loop and pool workers call through (tests patch it)
_run_case = run_case


# Worker-side handle for the parallel runner.  SuiteCase carries a
# stimulus-factory closure, which does not pickle; with the fork start
# method the child inherits this module global instead, and the parent
# only ships a case *index* per task.
_ACTIVE_SUITE: Optional["TestSuite"] = None


def _pool_run(args) -> CaseResult:
    """Worker entry point; must never raise.

    An exception escaping here would surface in the parent as an opaque
    pickling/``BrokenProcessPool`` failure with the worker's traceback
    lost, so every error — including harness-level ones such as a
    missing ``_ACTIVE_SUITE`` — is folded into an error
    :class:`CaseResult` carrying the original traceback text.
    """
    index, seed, fsm_mode, backend, coverage, batch = args
    try:
        return _run_case(_ACTIVE_SUITE.cases[index], seed=seed,
                         fsm_mode=fsm_mode, backend=backend,
                         coverage=coverage, batch=batch)
    except BaseException as exc:  # noqa: BLE001 - worker boundary
        name = f"case[{index}]"
        try:
            name = _ACTIVE_SUITE.cases[index].name
        except Exception:  # noqa: BLE001 - _ACTIVE_SUITE may be unusable
            pass
        return CaseResult(name, None, None, 0.0,
                          error=f"{type(exc).__name__}: {exc}",
                          traceback=traceback.format_exc())


class TestSuite:
    """Register cases, run them all, get one report."""

    __test__ = False  # library class, not a pytest test case

    def __init__(self, name: str = "suite") -> None:
        self.name = name
        self.cases: List[SuiteCase] = []

    def add(self, case: SuiteCase) -> SuiteCase:
        if any(existing.name == case.name for existing in self.cases):
            raise ValueError(f"duplicate case name {case.name!r}")
        self.cases.append(case)
        return case

    def run(self, *, seed: int = 0, fsm_mode: str = "generated",
            backend: str = "event", jobs: int = 1,
            cache: Optional[Union[ArtifactCache, str, Path]] = None,
            stop_on_failure: bool = False,
            coverage: bool = False,
            batch: int = 0,
            ledger=None) -> SuiteReport:
        """Verify every case; one report.

        ``backend`` selects the simulation kernel for all cases.
        ``batch`` > 1 verifies each case against that many stimulus
        sets (seeds ``seed`` .. ``seed + batch - 1``) advanced in
        lockstep through one elaboration per configuration (see
        :func:`verify_design_batch`); a case passes only if every lane
        passes.  Batched mode implies the batched backend and is
        mutually exclusive with ``coverage``.
        ``jobs`` > 1 fans independent cases out over a process pool
        (requires the ``fork`` start method; falls back to serial
        elsewhere, and ``stop_on_failure`` always runs serially so the
        early-exit semantics hold).  ``cache`` (an
        :class:`~repro.core.cache.ArtifactCache` or a directory path)
        answers unchanged passing cases from disk.  ``coverage=True``
        collects functional coverage per case and merges it into
        ``report.coverage``; when a trace recorder is installed
        (:func:`repro.obs.install`) every case — including pool
        workers, which inherit the recorder over ``fork`` — lands in
        one timeline.  ``ledger`` (a :class:`repro.obs.Ledger` or a
        path) appends one row per suite run — and one per case — after
        the run completes; the database is only touched in the parent
        process, after any worker pool has drained, so worker
        concurrency never reaches SQLite.
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if batch > 1:
            if coverage:
                raise ValueError(
                    "coverage collection is per-run and not supported "
                    "in batched mode")
            backend = "batched"
        if isinstance(cache, (str, Path)):
            cache = ArtifactCache(cache)
        report = SuiteReport(backend=backend, jobs=jobs)
        suite_started = time.perf_counter()

        keys: List[Optional[str]] = [None] * len(self.cases)
        slots: List[Optional[CaseResult]] = [None] * len(self.cases)
        pending: List[int] = []
        for index, case in enumerate(self.cases):
            if cache is not None:
                key = cache.key_for(case, seed=seed, fsm_mode=fsm_mode,
                                    backend=backend, coverage=coverage,
                                    batch=batch)
                keys[index] = key
                hit = cache.load(key)
                if hit is not None:
                    slots[index] = hit
                    report.cache_hits += 1
                    continue
            pending.append(index)

        parallel = (
            jobs > 1 and len(pending) > 1 and not stop_on_failure
            and "fork" in multiprocessing.get_all_start_methods()
        )
        run_span = span("suite.run", "suite", suite=self.name,
                        backend=backend, jobs=jobs, cases=len(self.cases),
                        cached=report.cache_hits)
        with run_span:
            if parallel:
                global _ACTIVE_SUITE
                _ACTIVE_SUITE = self
                try:
                    context = multiprocessing.get_context("fork")
                    workers = min(jobs, len(pending))
                    with ProcessPoolExecutor(max_workers=workers,
                                             mp_context=context) as pool:
                        tasks = [(index, seed, fsm_mode, backend, coverage,
                                  batch)
                                 for index in pending]
                        try:
                            for index, result in zip(
                                    pending, pool.map(_pool_run, tasks)):
                                slots[index] = result
                        except BrokenProcessPool as exc:
                            # a worker died without returning (hard crash,
                            # os._exit, OOM kill); name the cases still in
                            # flight instead of surfacing the bare pool
                            # error
                            unfinished = [self.cases[index].name
                                          for index in pending
                                          if slots[index] is None]
                            raise RuntimeError(
                                f"suite worker process died while running "
                                f"case(s) {unfinished}; rerun with jobs=1 "
                                f"to reproduce in-process"
                            ) from exc
                finally:
                    _ACTIVE_SUITE = None
            else:
                for index in pending:
                    slots[index] = _run_case(self.cases[index], seed=seed,
                                             fsm_mode=fsm_mode,
                                             backend=backend,
                                             coverage=coverage,
                                             batch=batch)
                    if stop_on_failure and not slots[index].passed:
                        break

        if cache is not None:
            for index in pending:
                if slots[index] is not None:
                    cache.store(keys[index], slots[index])
            report.cache_misses = cache.misses

        # preserve case order; under stop_on_failure, truncate at the
        # first case that never ran (matching the historical serial
        # semantics of "cases after the failure are absent")
        for result in slots:
            if result is None:
                break
            report.results.append(result)
        if coverage:
            merged = CoverageReport()
            for result in report.results:
                if result.verification is not None \
                        and result.verification.coverage is not None:
                    merged.merge(result.verification.coverage)
            report.coverage = merged
        report.wall_seconds = time.perf_counter() - suite_started

        if ledger is not None:
            from ..obs.ledger import Ledger
            owns = not isinstance(ledger, Ledger)
            sink = Ledger(ledger) if owns else ledger
            try:
                sink.record_suite(
                    report, suite=self.name,
                    sizes={case.name: dict(case.params)
                           for case in self.cases},
                    cache=cache)
            finally:
                if owns:
                    sink.close()
        return report
