"""The top-level façade: one object that ties the whole flow together.

``TestInfrastructure`` is the programmatic equivalent of the paper's
Figure 1 as a whole: register compiled algorithms, produce every
artifact (XML, dot, generated Python, stimulus files), verify them
against golden execution, and emit the Table I metrics — all under one
working directory so a compiler regression run leaves a complete audit
trail on disk.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Union

from ..compiler.spec import MemorySpec
from ..util.files import MemoryImage
from .flow import FlowReport, standard_flow
from .report import DesignMetrics, collect_metrics, format_table
from .testsuite import SuiteCase, SuiteReport, TestSuite

__all__ = ["TestInfrastructure"]


class TestInfrastructure:
    """Register algorithms; build, simulate, verify and report them."""

    __test__ = False  # library class, not a pytest test case

    def __init__(self, workdir: Union[str, Path],
                 name: str = "infrastructure") -> None:
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.name = name
        self.suite = TestSuite(name)
        self._inputs: Dict[str, Optional[Callable]] = {}

    # ------------------------------------------------------------------
    def register(self, name: str, func: Callable,
                 arrays: Mapping[str, MemorySpec],
                 params: Optional[Mapping[str, int]] = None,
                 *,
                 inputs: Optional[Callable[[int],
                                           Mapping[str, MemoryImage]]] = None,
                 n_partitions: int = 1,
                 word_width: int = 32,
                 max_cycles: int = 50_000_000) -> SuiteCase:
        """Add one algorithm to the managed suite."""
        case = SuiteCase(
            name=name, func=func, arrays=arrays, params=dict(params or {}),
            inputs=inputs, n_partitions=n_partitions,
            word_width=word_width, max_cycles=max_cycles,
        )
        self.suite.add(case)
        self._inputs[name] = inputs
        return case

    # ------------------------------------------------------------------
    def run_case(self, name: str, *, seed: int = 0,
                 fsm_mode: str = "generated",
                 backend: str = "event") -> FlowReport:
        """Run one case through the full artifact-producing flow.

        Artifacts land in ``<workdir>/<case>/``; the report carries the
        per-stage timings (Figure 1, stage by stage).
        """
        case = self._case(name)
        inputs = case.inputs(seed) if case.inputs else None
        flow = standard_flow(
            case.func, case.arrays, dict(case.params),
            workdir=self.workdir / name, inputs=inputs,
            n_partitions=case.n_partitions, word_width=case.word_width,
            fsm_mode=fsm_mode, backend=backend, max_cycles=case.max_cycles,
        )
        return flow.run()

    def run_all(self, *, seed: int = 0,
                fsm_mode: str = "generated",
                backend: str = "event", jobs: int = 1,
                cache: Union[bool, str, Path, None] = None) -> SuiteReport:
        """Verify every registered case (the regression-suite command).

        ``backend``/``jobs`` select the simulation kernel and the number
        of worker processes; ``cache=True`` keeps an artifact cache
        under ``<workdir>/.repro-cache`` (or pass an explicit directory).
        """
        if cache is True:
            cache = self.workdir / ".repro-cache"
        elif cache is False:
            cache = None
        return self.suite.run(seed=seed, fsm_mode=fsm_mode,
                              backend=backend, jobs=jobs, cache=cache)

    # ------------------------------------------------------------------
    def metrics(self, name: str) -> DesignMetrics:
        """Table I quantities for one case (without running it)."""
        return collect_metrics(self._case(name).compile())

    def metrics_table(self) -> str:
        """Table I for every registered case (compile only)."""
        return format_table([self.metrics(case.name)
                             for case in self.suite.cases])

    # ------------------------------------------------------------------
    def _case(self, name: str) -> SuiteCase:
        for case in self.suite.cases:
            if case.name == name:
                return case
        raise KeyError(f"no registered case named {name!r}")

    @property
    def case_names(self) -> List[str]:
        return [case.name for case in self.suite.cases]

    def __repr__(self) -> str:
        return (f"TestInfrastructure({str(self.workdir)!r}, "
                f"cases={self.case_names})")
