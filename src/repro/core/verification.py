"""Verify a compiled design against its golden software execution.

This is the infrastructure's core contract (paper §2): run the original
algorithm in software and the compiled hardware in simulation over the
same memory contents, then compare data word by word.  Any divergence —
a scheduling race, a mis-bound mux, a broken optimization pass — shows
up as a concrete address/expected/actual triple.
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from ..compiler.partitioning import SPILL_MEMORY
from ..compiler.pipeline import Design
from ..golden.runner import run_golden
from ..obs.coverage import CoverageCollector, CoverageReport
from ..obs.trace import span
from ..rtg.context import ReconfigurationContext
from ..rtg.executor import RtgExecutor, RtgRunResult
from ..sim.probe import Probe
from ..util.files import MemoryImage, MemoryMismatch, compare_images

__all__ = ["MemoryCheck", "VerificationResult", "verify_design",
           "prepare_images"]


@dataclass
class MemoryCheck:
    """The comparison outcome for one memory resource."""

    memory: str
    role: str
    words: int
    mismatches: List[MemoryMismatch] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.mismatches


@dataclass
class VerificationResult:
    """Everything one verification run produced."""

    design: str
    checks: List[MemoryCheck]
    cycles: int
    reconfigurations: int
    golden_seconds: float
    simulation_seconds: float
    rtg_result: Optional[RtgRunResult] = None
    evaluations: int = 0
    backend: str = "event"
    #: functional coverage, populated when ``verify_design(coverage=True)``
    coverage: Optional[CoverageReport] = None
    #: per-signal ``(time, value)`` samples for ``probe_signals`` (the
    #: paper's "access to values on certain connections")
    probe_samples: Dict[str, List[Tuple[int, int]]] = \
        field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def failed_checks(self) -> List[MemoryCheck]:
        return [check for check in self.checks if not check.passed]

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [
            f"[{status}] {self.design}: {self.cycles} cycles, "
            f"{self.reconfigurations} reconfiguration(s), "
            f"sim {self.simulation_seconds:.3f}s, "
            f"golden {self.golden_seconds:.3f}s"
        ]
        for check in self.checks:
            if check.passed:
                lines.append(f"  {check.memory}: {check.words} words OK")
            else:
                lines.append(
                    f"  {check.memory}: {len(check.mismatches)} "
                    f"mismatch(es), first: "
                    f"{check.mismatches[0].describe(16)}"
                )
        return "\n".join(lines)


def prepare_images(design: Design,
                   inputs: Optional[Mapping[str, Union[MemoryImage,
                                                       Sequence[int]]]] = None
                   ) -> Dict[str, MemoryImage]:
    """Fresh images for every design memory, filled from *inputs*.

    *inputs* values may be :class:`MemoryImage` (copied) or plain word
    sequences.  Memories without input data start zeroed.  The internal
    spill memory is never initialised from inputs.
    """
    inputs = dict(inputs or {})
    images: Dict[str, MemoryImage] = {}
    for name, spec in design.arrays.items():
        if name == SPILL_MEMORY:
            images[name] = MemoryImage(spec.width, spec.depth, name=name)
            continue
        supplied = inputs.pop(name, None)
        if supplied is None:
            images[name] = MemoryImage(spec.width, spec.depth, name=name)
        elif isinstance(supplied, MemoryImage):
            if supplied.width != spec.width or supplied.depth != spec.depth:
                raise ValueError(
                    f"input {name!r}: image is "
                    f"{supplied.width}x{supplied.depth}, design expects "
                    f"{spec.width}x{spec.depth}"
                )
            images[name] = supplied.copy(name=name)
        else:
            images[name] = MemoryImage(spec.width, spec.depth,
                                       words=list(supplied), name=name)
    if inputs:
        raise ValueError(
            f"inputs supplied for unknown arrays: {sorted(inputs)}"
        )
    return images


def verify_design(design: Design, func: Callable,
                  inputs: Optional[Mapping[str, Union[MemoryImage,
                                                      Sequence[int]]]] = None,
                  *,
                  compare: str = "all",
                  fsm_mode: str = "generated",
                  control_mode: str = "generated",
                  backend: str = "event",
                  max_cycles: int = 50_000_000,
                  mismatch_limit: int = 32,
                  trace_dir=None,
                  coverage: bool = False,
                  probe_signals: Sequence[str] = (),
                  ledger=None) -> VerificationResult:
    """Run golden + simulation over identical inputs and compare memories.

    ``compare`` selects which memories are checked: ``"all"`` (every
    array except the spill memory) or ``"outputs"`` (only
    ``role="output"`` arrays).  ``trace_dir`` dumps one VCD waveform
    per executed configuration.  ``backend`` picks the simulation kernel
    (see :data:`repro.sim.SIMULATOR_BACKENDS`); every backend produces
    identical verdicts, they differ only in speed.  ``coverage=True``
    collects FSM state/transition and operator-activation coverage into
    ``result.coverage`` (see :mod:`repro.obs.coverage`).
    ``probe_signals`` names signals to record: every configuration that
    has a signal of that name gets a :class:`~repro.sim.Probe` attached
    for its run (scoped as a context manager, so no watcher survives
    the run) and the ``(time, value)`` samples land in
    ``result.probe_samples``.  Note a probe is a foreign watcher to the
    compiled kernel, which then conservatively falls back to the event
    kernel — observation costs speed, never correctness.  ``ledger`` (a
    :class:`repro.obs.Ledger` or a path) appends the result as one
    ``verify`` row once the comparison is done.
    """
    if compare not in ("all", "outputs"):
        raise ValueError(f"compare must be 'all' or 'outputs', got {compare!r}")

    base_images = prepare_images(design, inputs)
    array_specs = {name: spec for name, spec in design.arrays.items()
                   if name != SPILL_MEMORY}

    golden_images = {name: image.copy()
                     for name, image in base_images.items()
                     if name != SPILL_MEMORY}
    started = time.perf_counter()
    with span("verify.golden", "verify", design=design.name):
        run_golden(func, array_specs, golden_images, design.params)
    golden_seconds = time.perf_counter() - started

    collector = CoverageCollector() if coverage else None
    context = ReconfigurationContext.from_rtg(design.rtg,
                                              initial=base_images)
    executor = RtgExecutor(design.rtg, context, fsm_mode=fsm_mode,
                           control_mode=control_mode, backend=backend,
                           max_cycles_per_configuration=max_cycles,
                           trace_dir=trace_dir, coverage=collector)
    probe_samples: Dict[str, List[Tuple[int, int]]] = {}
    started = time.perf_counter()
    with span("verify.simulate", "verify", design=design.name,
              backend=backend), ExitStack() as probes:
        if probe_signals:
            attached: List[Tuple[str, Probe]] = []

            def attach_probes(sim_design) -> None:
                for name in probe_signals:
                    signal = sim_design.sim.signals.get(name)
                    if signal is not None:
                        probe = probes.enter_context(
                            Probe(sim_design.sim, signal))
                        attached.append((name, probe))

            executor.on_configure = attach_probes
        rtg_result = executor.run()
        if probe_signals:
            for name, probe in attached:
                probe_samples.setdefault(name, []).extend(probe.samples)
    simulation_seconds = time.perf_counter() - started

    checks: List[MemoryCheck] = []
    with span("verify.compare", "verify", design=design.name):
        for name, spec in array_specs.items():
            if compare == "outputs" and spec.role != "output":
                continue
            mismatches = compare_images(golden_images[name],
                                        context.memory(name),
                                        limit=mismatch_limit)
            checks.append(MemoryCheck(name, spec.role, words=spec.depth,
                                      mismatches=mismatches))

    result = VerificationResult(
        design=design.name,
        checks=checks,
        cycles=rtg_result.total_cycles,
        reconfigurations=rtg_result.reconfigurations,
        golden_seconds=golden_seconds,
        simulation_seconds=simulation_seconds,
        rtg_result=rtg_result,
        evaluations=rtg_result.total_evaluations,
        backend=backend,
        coverage=collector.report if collector is not None else None,
        probe_samples=probe_samples,
    )
    if ledger is not None:
        from ..obs.ledger import Ledger
        owns = not isinstance(ledger, Ledger)
        sink = Ledger(ledger) if owns else ledger
        try:
            sink.record_verification(result, size=design.params)
        finally:
            if owns:
                sink.close()
    return result
