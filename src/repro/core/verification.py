"""Verify a compiled design against its golden software execution.

This is the infrastructure's core contract (paper §2): run the original
algorithm in software and the compiled hardware in simulation over the
same memory contents, then compare data word by word.  Any divergence —
a scheduling race, a mis-bound mux, a broken optimization pass — shows
up as a concrete address/expected/actual triple.
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from ..compiler.partitioning import SPILL_MEMORY
from ..compiler.pipeline import Design
from ..golden.runner import run_golden
from ..obs.coverage import CoverageCollector, CoverageReport
from ..obs.trace import span
from ..rtg.context import ReconfigurationContext
from ..rtg.executor import RtgBatchExecutor, RtgExecutor, RtgRunResult
from ..sim.batched import BatchUnsupported
from ..sim.probe import Probe
from ..util.files import MemoryImage, MemoryMismatch, compare_images

__all__ = ["MemoryCheck", "VerificationResult", "verify_design",
           "BatchVerificationResult", "verify_design_batch",
           "prepare_images"]


@dataclass
class MemoryCheck:
    """The comparison outcome for one memory resource."""

    memory: str
    role: str
    words: int
    mismatches: List[MemoryMismatch] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.mismatches


@dataclass
class VerificationResult:
    """Everything one verification run produced."""

    design: str
    checks: List[MemoryCheck]
    cycles: int
    reconfigurations: int
    golden_seconds: float
    simulation_seconds: float
    rtg_result: Optional[RtgRunResult] = None
    evaluations: int = 0
    backend: str = "event"
    #: functional coverage, populated when ``verify_design(coverage=True)``
    coverage: Optional[CoverageReport] = None
    #: per-signal ``(time, value)`` samples for ``probe_signals`` (the
    #: paper's "access to values on certain connections")
    probe_samples: Dict[str, List[Tuple[int, int]]] = \
        field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def failed_checks(self) -> List[MemoryCheck]:
        return [check for check in self.checks if not check.passed]

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [
            f"[{status}] {self.design}: {self.cycles} cycles, "
            f"{self.reconfigurations} reconfiguration(s), "
            f"sim {self.simulation_seconds:.3f}s, "
            f"golden {self.golden_seconds:.3f}s"
        ]
        for check in self.checks:
            if check.passed:
                lines.append(f"  {check.memory}: {check.words} words OK")
            else:
                lines.append(
                    f"  {check.memory}: {len(check.mismatches)} "
                    f"mismatch(es), first: "
                    f"{check.mismatches[0].describe(16)}"
                )
        return "\n".join(lines)


def prepare_images(design: Design,
                   inputs: Optional[Mapping[str, Union[MemoryImage,
                                                       Sequence[int]]]] = None
                   ) -> Dict[str, MemoryImage]:
    """Fresh images for every design memory, filled from *inputs*.

    *inputs* values may be :class:`MemoryImage` (copied) or plain word
    sequences.  Memories without input data start zeroed.  The internal
    spill memory is never initialised from inputs.
    """
    inputs = dict(inputs or {})
    images: Dict[str, MemoryImage] = {}
    for name, spec in design.arrays.items():
        if name == SPILL_MEMORY:
            images[name] = MemoryImage(spec.width, spec.depth, name=name)
            continue
        supplied = inputs.pop(name, None)
        if supplied is None:
            images[name] = MemoryImage(spec.width, spec.depth, name=name)
        elif isinstance(supplied, MemoryImage):
            if supplied.width != spec.width or supplied.depth != spec.depth:
                raise ValueError(
                    f"input {name!r}: image is "
                    f"{supplied.width}x{supplied.depth}, design expects "
                    f"{spec.width}x{spec.depth}"
                )
            images[name] = supplied.copy(name=name)
        else:
            images[name] = MemoryImage(spec.width, spec.depth,
                                       words=list(supplied), name=name)
    if inputs:
        raise ValueError(
            f"inputs supplied for unknown arrays: {sorted(inputs)}"
        )
    return images


def verify_design(design: Design, func: Callable,
                  inputs: Optional[Mapping[str, Union[MemoryImage,
                                                      Sequence[int]]]] = None,
                  *,
                  compare: str = "all",
                  fsm_mode: str = "generated",
                  control_mode: str = "generated",
                  backend: str = "event",
                  max_cycles: int = 50_000_000,
                  mismatch_limit: int = 32,
                  trace_dir=None,
                  coverage: bool = False,
                  probe_signals: Sequence[str] = (),
                  ledger=None) -> VerificationResult:
    """Run golden + simulation over identical inputs and compare memories.

    ``compare`` selects which memories are checked: ``"all"`` (every
    array except the spill memory) or ``"outputs"`` (only
    ``role="output"`` arrays).  ``trace_dir`` dumps one VCD waveform
    per executed configuration.  ``backend`` picks the simulation kernel
    (see :data:`repro.sim.SIMULATOR_BACKENDS`); every backend produces
    identical verdicts, they differ only in speed.  ``coverage=True``
    collects FSM state/transition and operator-activation coverage into
    ``result.coverage`` (see :mod:`repro.obs.coverage`).
    ``probe_signals`` names signals to record: every configuration that
    has a signal of that name gets a :class:`~repro.sim.Probe` attached
    for its run (scoped as a context manager, so no watcher survives
    the run) and the ``(time, value)`` samples land in
    ``result.probe_samples``.  Note a probe is a foreign watcher to the
    compiled kernel, which then conservatively falls back to the event
    kernel — observation costs speed, never correctness.  ``ledger`` (a
    :class:`repro.obs.Ledger` or a path) appends the result as one
    ``verify`` row once the comparison is done.
    """
    if compare not in ("all", "outputs"):
        raise ValueError(f"compare must be 'all' or 'outputs', got {compare!r}")

    base_images = prepare_images(design, inputs)
    array_specs = {name: spec for name, spec in design.arrays.items()
                   if name != SPILL_MEMORY}

    golden_images = {name: image.copy()
                     for name, image in base_images.items()
                     if name != SPILL_MEMORY}
    started = time.perf_counter()
    with span("verify.golden", "verify", design=design.name):
        run_golden(func, array_specs, golden_images, design.params)
    golden_seconds = time.perf_counter() - started

    collector = CoverageCollector() if coverage else None
    context = ReconfigurationContext.from_rtg(design.rtg,
                                              initial=base_images)
    executor = RtgExecutor(design.rtg, context, fsm_mode=fsm_mode,
                           control_mode=control_mode, backend=backend,
                           max_cycles_per_configuration=max_cycles,
                           trace_dir=trace_dir, coverage=collector)
    probe_samples: Dict[str, List[Tuple[int, int]]] = {}
    started = time.perf_counter()
    with span("verify.simulate", "verify", design=design.name,
              backend=backend), ExitStack() as probes:
        if probe_signals:
            attached: List[Tuple[str, Probe]] = []

            def attach_probes(sim_design) -> None:
                for name in probe_signals:
                    signal = sim_design.sim.signals.get(name)
                    if signal is not None:
                        probe = probes.enter_context(
                            Probe(sim_design.sim, signal))
                        attached.append((name, probe))

            executor.on_configure = attach_probes
        rtg_result = executor.run()
        if probe_signals:
            for name, probe in attached:
                probe_samples.setdefault(name, []).extend(probe.samples)
    simulation_seconds = time.perf_counter() - started

    checks: List[MemoryCheck] = []
    with span("verify.compare", "verify", design=design.name):
        for name, spec in array_specs.items():
            if compare == "outputs" and spec.role != "output":
                continue
            mismatches = compare_images(golden_images[name],
                                        context.memory(name),
                                        limit=mismatch_limit)
            checks.append(MemoryCheck(name, spec.role, words=spec.depth,
                                      mismatches=mismatches))

    result = VerificationResult(
        design=design.name,
        checks=checks,
        cycles=rtg_result.total_cycles,
        reconfigurations=rtg_result.reconfigurations,
        golden_seconds=golden_seconds,
        simulation_seconds=simulation_seconds,
        rtg_result=rtg_result,
        evaluations=rtg_result.total_evaluations,
        backend=backend,
        coverage=collector.report if collector is not None else None,
        probe_samples=probe_samples,
    )
    if ledger is not None:
        from ..obs.ledger import Ledger
        owns = not isinstance(ledger, Ledger)
        sink = Ledger(ledger) if owns else ledger
        try:
            sink.record_verification(result, size=design.params)
        finally:
            if owns:
                sink.close()
    return result


@dataclass
class BatchVerificationResult:
    """One batched verification: N stimulus sets, one elaboration each
    configuration, per-lane verdicts."""

    design: str
    backend: str
    batch_size: int
    #: one full :class:`VerificationResult` per stimulus set, in input
    #: order; each lane's ``simulation_seconds`` is the amortized
    #: per-lane share of the batch window
    lanes: List[VerificationResult]
    golden_seconds: float
    #: wall-clock of the whole batch simulation, elaborations included
    simulation_seconds: float
    lanes_converged: float = 1.0
    rounds: int = 0
    elaborations: int = 0
    #: False when the design refused the batch fast path and the lanes
    #: ran serially (identical verdicts, no amortization)
    batched: bool = True
    fallback_reason: Optional[str] = None
    #: coverage is a per-run concern; batch runs don't collect it
    coverage: Optional[CoverageReport] = None

    @property
    def passed(self) -> bool:
        return all(lane.passed for lane in self.lanes)

    # aggregate views so recorders/metrics can treat a batch result
    # like a plain VerificationResult
    @property
    def cycles(self) -> int:
        return sum(lane.cycles for lane in self.lanes)

    @property
    def evaluations(self) -> int:
        return sum(lane.evaluations for lane in self.lanes)

    @property
    def reconfigurations(self) -> int:
        return sum(lane.reconfigurations for lane in self.lanes)

    @property
    def lane_seconds(self) -> float:
        """Amortized simulation seconds per stimulus set."""
        if not self.batch_size:
            return 0.0
        return self.simulation_seconds / self.batch_size

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        mode = "batched" if self.batched else \
            f"serial fallback ({self.fallback_reason})"
        lines = [
            f"[{status}] {self.design}: batch of {self.batch_size} "
            f"({mode}), sim {self.simulation_seconds:.3f}s "
            f"({self.lane_seconds * 1000:.1f}ms/lane), "
            f"golden {self.golden_seconds:.3f}s, "
            f"converged {self.lanes_converged:.0%}"
        ]
        for index, lane in enumerate(self.lanes):
            if not lane.passed:
                failed = lane.failed_checks()
                lines.append(
                    f"  lane {index}: {len(failed)} failed check(s), "
                    f"first: {failed[0].mismatches[0].describe(16)}")
        return "\n".join(lines)


def verify_design_batch(design: Design, func: Callable,
                        inputs_list: Sequence[Mapping[str,
                                                      Union[MemoryImage,
                                                            Sequence[int]]]],
                        *,
                        compare: str = "all",
                        fsm_mode: str = "generated",
                        control_mode: str = "generated",
                        max_cycles: int = 50_000_000,
                        mismatch_limit: int = 32,
                        ledger=None) -> BatchVerificationResult:
    """Verify *design* against N stimulus sets with one elaboration.

    Semantically equivalent to calling :func:`verify_design` once per
    entry of *inputs_list* with ``backend="batched"`` — same golden
    runs, same word-by-word comparisons, same verdicts — but the
    simulation advances all sets in lockstep through a single
    elaborated kernel (see :mod:`repro.sim.batched`), so the per-run
    fixed costs (elaboration, codegen binding, settle, RTG dispatch)
    are paid once per configuration instead of once per stimulus set.

    Designs that cannot take the batch fast path (no Moore ``done``
    line, foreign watchers, codegen fallback) are detected before any
    lane runs and fall back to serial execution; the result then has
    ``batched=False`` and carries the reason.
    """
    if compare not in ("all", "outputs"):
        raise ValueError(f"compare must be 'all' or 'outputs', got {compare!r}")

    array_specs = {name: spec for name, spec in design.arrays.items()
                   if name != SPILL_MEMORY}
    backend = "batched"

    lane_base: List[Dict[str, MemoryImage]] = []
    lane_golden: List[Dict[str, MemoryImage]] = []
    golden_started = time.perf_counter()
    with span("verify.golden", "verify", design=design.name,
              batch=len(inputs_list)):
        for inputs in inputs_list:
            base_images = prepare_images(design, inputs)
            golden_images = {name: image.copy()
                             for name, image in base_images.items()
                             if name != SPILL_MEMORY}
            run_golden(func, array_specs, golden_images, design.params)
            lane_base.append(base_images)
            lane_golden.append(golden_images)
    golden_seconds = time.perf_counter() - golden_started

    contexts = [ReconfigurationContext.from_rtg(design.rtg, initial=base)
                for base in lane_base]
    batched = True
    fallback_reason = None
    started = time.perf_counter()
    with span("verify.simulate", "verify", design=design.name,
              backend=backend, batch=len(inputs_list)):
        executor = RtgBatchExecutor(design.rtg, contexts,
                                    fsm_mode=fsm_mode,
                                    control_mode=control_mode,
                                    max_cycles_per_configuration=max_cycles)
        try:
            batch_result = executor.run()
            lane_rtg = batch_result.lanes
            lanes_converged = batch_result.lanes_converged
            rounds = batch_result.rounds
            elaborations = batch_result.elaborations
        except BatchUnsupported as exc:
            # serial fallback: same backend class, one lane at a time
            batched = False
            fallback_reason = str(exc)
            lane_rtg = []
            for context in contexts:
                serial = RtgExecutor(design.rtg, context,
                                     fsm_mode=fsm_mode,
                                     control_mode=control_mode,
                                     backend=backend,
                                     max_cycles_per_configuration=max_cycles)
                lane_rtg.append(serial.run())
            lanes_converged = 1.0
            rounds = 0
            elaborations = sum(len(result.runs) for result in lane_rtg)
    simulation_seconds = time.perf_counter() - started
    amortized = simulation_seconds / max(len(inputs_list), 1)

    lanes: List[VerificationResult] = []
    with span("verify.compare", "verify", design=design.name,
              batch=len(inputs_list)):
        for lane, context in enumerate(contexts):
            checks: List[MemoryCheck] = []
            for name, spec in array_specs.items():
                if compare == "outputs" and spec.role != "output":
                    continue
                mismatches = compare_images(lane_golden[lane][name],
                                            context.memory(name),
                                            limit=mismatch_limit)
                checks.append(MemoryCheck(name, spec.role, words=spec.depth,
                                          mismatches=mismatches))
            lanes.append(VerificationResult(
                design=design.name,
                checks=checks,
                cycles=lane_rtg[lane].total_cycles,
                reconfigurations=lane_rtg[lane].reconfigurations,
                golden_seconds=golden_seconds / max(len(inputs_list), 1),
                simulation_seconds=amortized,
                rtg_result=lane_rtg[lane],
                evaluations=lane_rtg[lane].total_evaluations,
                backend=backend,
            ))

    result = BatchVerificationResult(
        design=design.name,
        backend=backend,
        batch_size=len(inputs_list),
        lanes=lanes,
        golden_seconds=golden_seconds,
        simulation_seconds=simulation_seconds,
        lanes_converged=lanes_converged,
        rounds=rounds,
        elaborations=elaborations,
        batched=batched,
        fallback_reason=fallback_reason,
    )
    if ledger is not None:
        from ..obs.ledger import Ledger
        owns = not isinstance(ledger, Ledger)
        sink = Ledger(ledger) if owns else ledger
        try:
            sink.record_batch_verification(result, size=design.params)
        finally:
            if owns:
                sink.close()
    return result
