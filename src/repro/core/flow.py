"""The automated build-and-test flow (the paper's ANT build).

A :class:`Flow` runs named stages over a shared context dict, timing each
one.  :func:`standard_flow` assembles the canonical Figure 1 pipeline:

1. ``compile``      — algorithm → Design (datapath/FSM/RTG IR)
2. ``emit-xml``     — Design → the three XML dialects on disk
3. ``emit-dot``     — XML IR → Graphviz files ("to dotty")
4. ``emit-python``  — FSM/RTG → generated Python sources ("to java")
5. ``stimulus``     — memory/stimulus files
6. ``golden``       — software execution over the stimulus
7. ``simulate``     — reload XML from disk, elaborate, run to done
8. ``compare``      — word-level comparison of memory contents

Stage 7 deliberately reloads the XML bundle instead of reusing the
in-memory Design: the flow then exercises the same path a compiler user
does (compiler output files in, verdict out).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from ..compiler.partitioning import SPILL_MEMORY
from ..compiler.pipeline import compile_function
from ..compiler.spec import MemorySpec
from ..golden.runner import run_golden
from ..hdl.xmlio.rtg_xml import load_rtg_bundle
from ..obs.coverage import CoverageCollector
from ..obs.trace import span
from ..rtg.context import ReconfigurationContext
from ..rtg.executor import RtgExecutor
from ..translate.engine import translate
from ..translate.to_python import fsm_to_python, rtg_to_python
from ..util.files import MemoryImage, compare_images
from .stimulus import write_stimulus_files
from .verification import MemoryCheck, prepare_images

__all__ = ["FlowStage", "StageResult", "FlowReport", "Flow",
           "standard_flow"]


@dataclass
class FlowStage:
    """One named step of the flow."""

    name: str
    action: Callable[[Dict[str, Any]], Any]


@dataclass
class StageResult:
    name: str
    seconds: float
    detail: str = ""


@dataclass
class FlowReport:
    stages: List[StageResult] = field(default_factory=list)
    context: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def stage(self, name: str) -> StageResult:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r}")

    def summary(self) -> str:
        lines = ["stage            seconds  detail",
                 "---------------  -------  ------"]
        for stage in self.stages:
            lines.append(f"{stage.name:<15}  {stage.seconds:7.3f}  "
                         f"{stage.detail}")
        lines.append(f"{'total':<15}  {self.total_seconds:7.3f}")
        return "\n".join(lines)


class Flow:
    """Run stages in order over a shared context, timing each."""

    def __init__(self, stages: Sequence[FlowStage]) -> None:
        self.stages = list(stages)

    def run(self, context: Optional[Dict[str, Any]] = None) -> FlowReport:
        report = FlowReport(context=dict(context or {}))
        for stage in self.stages:
            started = time.perf_counter()
            with span(f"flow.{stage.name}", "flow") as timing:
                detail = stage.action(report.context)
                if detail is not None:
                    timing.set("detail", str(detail))
            seconds = time.perf_counter() - started
            report.stages.append(StageResult(
                stage.name, seconds,
                detail="" if detail is None else str(detail),
            ))
        return report


def standard_flow(func: Callable,
                  arrays: Mapping[str, MemorySpec],
                  params: Optional[Mapping[str, int]] = None,
                  *,
                  workdir: Union[str, Path],
                  inputs: Optional[Mapping[str, MemoryImage]] = None,
                  n_partitions: int = 1,
                  word_width: int = 32,
                  fsm_mode: str = "generated",
                  backend: str = "event",
                  max_cycles: int = 50_000_000,
                  coverage: bool = False) -> Flow:
    """The canonical end-to-end flow over one algorithm (see module doc).

    ``backend`` selects the simulation kernel used by the simulate stage
    (see :data:`repro.sim.SIMULATOR_BACKENDS`).  ``coverage=True`` makes
    the simulate stage collect functional coverage into
    ``ctx["coverage"]`` (a :class:`repro.obs.CoverageReport`).
    """
    workdir = Path(workdir)

    def stage_compile(ctx: Dict[str, Any]) -> str:
        design = compile_function(func, arrays, params,
                                  word_width=word_width,
                                  n_partitions=n_partitions)
        ctx["design"] = design
        return f"{len(design.configurations)} configuration(s)"

    def stage_emit_xml(ctx: Dict[str, Any]) -> str:
        written = ctx["design"].save(workdir)
        ctx["xml_files"] = written
        ctx["rtg_path"] = written[-1]
        return f"{len(written)} file(s)"

    def stage_emit_dot(ctx: Dict[str, Any]) -> str:
        design = ctx["design"]
        dot_files: List[Path] = []
        for config in design.configurations:
            for artifact, suffix in ((config.datapath, "datapath"),
                                     (config.fsm, "fsm")):
                path = workdir / f"{design.name}_{config.name}_{suffix}.dot"
                path.write_text(translate(artifact, "dot"))
                dot_files.append(path)
        path = workdir / f"{design.name}_rtg.dot"
        path.write_text(translate(design.rtg, "dot"))
        dot_files.append(path)
        ctx["dot_files"] = dot_files
        return f"{len(dot_files)} file(s)"

    def stage_emit_python(ctx: Dict[str, Any]) -> str:
        design = ctx["design"]
        generated: List[Path] = []
        for config in design.configurations:
            path = workdir / f"{design.name}_{config.name}_fsm.py"
            path.write_text(fsm_to_python(config.fsm))
            generated.append(path)
        path = workdir / f"{design.name}_rtg.py"
        path.write_text(rtg_to_python(design.rtg))
        generated.append(path)
        ctx["generated_files"] = generated
        return f"{len(generated)} file(s)"

    def stage_stimulus(ctx: Dict[str, Any]) -> str:
        design = ctx["design"]
        images = prepare_images(design, inputs)
        ctx["images"] = images
        stimulus = {name: image for name, image in images.items()
                    if name != SPILL_MEMORY}
        write_stimulus_files(workdir, stimulus)
        return f"{len(stimulus)} memory file(s)"

    def stage_golden(ctx: Dict[str, Any]) -> str:
        design = ctx["design"]
        specs = {name: spec for name, spec in design.arrays.items()
                 if name != SPILL_MEMORY}
        golden = {name: image.copy()
                  for name, image in ctx["images"].items()
                  if name != SPILL_MEMORY}
        run_golden(func, specs, golden, design.params)
        ctx["golden_images"] = golden
        return f"{len(golden)} memory(ies)"

    def stage_simulate(ctx: Dict[str, Any]) -> str:
        rtg = load_rtg_bundle(ctx["rtg_path"])
        context = ReconfigurationContext.from_rtg(
            rtg, initial=ctx["images"])
        collector = CoverageCollector() if coverage else None
        executor = RtgExecutor(rtg, context, fsm_mode=fsm_mode,
                               backend=backend,
                               max_cycles_per_configuration=max_cycles,
                               coverage=collector)
        result = executor.run()
        ctx["rtg_run"] = result
        ctx["hw_images"] = context.memories
        if collector is not None:
            ctx["coverage"] = collector.report
        return (f"{result.total_cycles} cycles, "
                f"{result.reconfigurations} reconfiguration(s)")

    def stage_compare(ctx: Dict[str, Any]) -> str:
        design = ctx["design"]
        checks: List[MemoryCheck] = []
        for name, spec in design.arrays.items():
            if name == SPILL_MEMORY:
                continue
            mismatches = compare_images(ctx["golden_images"][name],
                                        ctx["hw_images"][name], limit=32)
            checks.append(MemoryCheck(name, spec.role, spec.depth,
                                      mismatches))
        ctx["checks"] = checks
        ctx["passed"] = all(check.passed for check in checks)
        failing = [check.memory for check in checks if not check.passed]
        return "PASS" if not failing else f"FAIL: {failing}"

    return Flow([
        FlowStage("compile", stage_compile),
        FlowStage("emit-xml", stage_emit_xml),
        FlowStage("emit-dot", stage_emit_dot),
        FlowStage("emit-python", stage_emit_python),
        FlowStage("stimulus", stage_stimulus),
        FlowStage("golden", stage_golden),
        FlowStage("simulate", stage_simulate),
        FlowStage("compare", stage_compare),
    ])
