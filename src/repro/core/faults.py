"""Fault injection: qualify the test infrastructure itself.

The infrastructure exists to catch regressions a compiler change
introduces into generated designs.  This module asks the meta-question —
*would it?* — by injecting representative compiler-bug-shaped faults
into a compiled design and checking that golden comparison flags each
one:

* ``const_value`` — a constant generator emits a wrong value (typical
  off-by-one / wrong-literal codegen bug);
* ``cmp_op`` — a comparator uses the adjacent operator (``lt``/``le``,
  ``gt``/``ge``, ``eq``/``ne`` — the classic loop-bound bug);
* ``mux_swap`` — two mux inputs are wired in the wrong order (binding
  bug);
* ``branch_swap`` — a conditional FSM transition's targets are exchanged
  (control-generation bug);
* ``stuck_control`` — one state forgets one control assignment
  (enable/select dropped by FSM generation);
* ``wrong_state_order`` — a state's default transition goes one state
  too far (skipped control step).

Faults are applied to *copies* made through the XML dialects (write →
read), so the campaign also exercises serialisation.  Each injected
design runs through :func:`repro.core.verification.verify_design`; the
verdict per fault is ``detected`` (memory mismatch), ``crashed``
(simulation error/timeout — also a detection) or ``survived``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..compiler.pipeline import Configuration, Design
from ..hdl.model.datapath import Datapath
from ..hdl.model.fsm import DONE_OUTPUT, Fsm
from ..hdl.model.rtg import Rtg
from ..hdl.xmlio.datapath_xml import read_datapath, write_datapath
from ..hdl.xmlio.fsm_xml import read_fsm, write_fsm
from ..sim.errors import SimulationError
from .verification import verify_design

__all__ = ["Fault", "FaultVerdict", "CampaignResult", "enumerate_faults",
           "inject_fault", "run_campaign"]

_CMP_NEIGHBOUR = {"lt": "le", "le": "lt", "gt": "ge", "ge": "gt",
                  "eq": "ne", "ne": "eq"}


@dataclass(frozen=True)
class Fault:
    """One concrete mutation of a design."""

    kind: str
    target: str
    detail: str = ""

    def describe(self) -> str:
        text = f"{self.kind} @ {self.target}"
        return f"{text} ({self.detail})" if self.detail else text


@dataclass
class FaultVerdict:
    fault: Fault
    verdict: str  # "detected" | "crashed" | "survived"
    note: str = ""

    @property
    def killed(self) -> bool:
        return self.verdict in ("detected", "crashed")


@dataclass
class CampaignResult:
    verdicts: List[FaultVerdict] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.verdicts)

    @property
    def killed(self) -> int:
        return sum(1 for v in self.verdicts if v.killed)

    @property
    def survivors(self) -> List[FaultVerdict]:
        return [v for v in self.verdicts if not v.killed]

    @property
    def kill_rate(self) -> float:
        return self.killed / self.total if self.total else 1.0

    def summary(self) -> str:
        lines = [
            f"fault campaign: {self.killed}/{self.total} killed "
            f"({self.kill_rate:.0%})"
        ]
        for verdict in self.verdicts:
            lines.append(f"  [{verdict.verdict:^8}] "
                         f"{verdict.fault.describe()}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Fault enumeration
# ----------------------------------------------------------------------
def enumerate_faults(datapath: Datapath, fsm: Fsm,
                     *, limit_per_kind: Optional[int] = None) -> List[Fault]:
    """All applicable single faults for one configuration."""
    faults: List[Fault] = []

    consts = [decl for decl in datapath.components.values()
              if decl.type == "const"]
    for decl in consts:
        faults.append(Fault("const_value", decl.name,
                            f"value {decl.param('value')} ^ 1"))

    for decl in datapath.components.values():
        if decl.type in _CMP_NEIGHBOUR:
            faults.append(Fault("cmp_op", decl.name,
                                f"{decl.type} -> "
                                f"{_CMP_NEIGHBOUR[decl.type]}"))

    for decl in datapath.components.values():
        if decl.type == "mux":
            inputs = int(decl.param("inputs", "0"))
            if inputs >= 2:
                faults.append(Fault("mux_swap", decl.name, "in0 <-> in1"))

    for state in fsm.states.values():
        conditional = [t for t in state.transitions if not t.unconditional]
        if conditional and len(state.transitions) >= 2:
            faults.append(Fault("branch_swap", state.name,
                                "first guard's target <-> default"))

    for state in fsm.states.values():
        for output in state.assigns:
            if output == DONE_OUTPUT:
                continue
            faults.append(Fault("stuck_control", state.name, output))

    state_names = list(fsm.states)
    for index, state in enumerate(fsm.states.values()):
        default = next((t for t in state.transitions if t.unconditional),
                       None)
        if default is None:
            continue
        target_index = state_names.index(default.target)
        if target_index + 1 < len(state_names):
            faults.append(Fault("wrong_state_order", state.name,
                                f"default {default.target} -> "
                                f"{state_names[target_index + 1]}"))

    if limit_per_kind is not None:
        by_kind: Dict[str, List[Fault]] = {}
        for fault in faults:
            by_kind.setdefault(fault.kind, []).append(fault)
        faults = [fault for kind_faults in by_kind.values()
                  for fault in kind_faults[:limit_per_kind]]
    return faults


# ----------------------------------------------------------------------
# Fault application (on XML-roundtripped copies)
# ----------------------------------------------------------------------
def _copy_configuration(config: Configuration) -> Tuple[Datapath, Fsm]:
    return (read_datapath(write_datapath(config.datapath)),
            read_fsm(write_fsm(config.fsm)))


def _apply(fault: Fault, datapath: Datapath, fsm: Fsm) -> None:
    if fault.kind == "const_value":
        decl = datapath.components[fault.target]
        decl.params["value"] = str(int(decl.params["value"], 0) ^ 1)
    elif fault.kind == "cmp_op":
        decl = datapath.components[fault.target]
        decl.type = _CMP_NEIGHBOUR[decl.type]
    elif fault.kind == "mux_swap":
        lowered = 0
        for net in datapath.nets.values():
            for position, sink in enumerate(net.sinks):
                if sink.component == fault.target and \
                        sink.port in ("in0", "in1"):
                    other = "in1" if sink.port == "in0" else "in0"
                    net.sinks[position] = type(sink)(sink.component, other)
                    lowered += 1
        if lowered == 0:
            raise ValueError(f"mux {fault.target!r} has no in0/in1 sinks")
    elif fault.kind == "branch_swap":
        state = fsm.states[fault.target]
        first = state.transitions[0]
        default = state.transitions[-1]
        first.target, default.target = default.target, first.target
    elif fault.kind == "stuck_control":
        state = fsm.states[fault.target]
        del state.assigns[fault.detail]
    elif fault.kind == "wrong_state_order":
        state = fsm.states[fault.target]
        default = next(t for t in state.transitions if t.unconditional)
        default.target = fault.detail.split(" -> ")[1]
    else:
        raise ValueError(f"unknown fault kind {fault.kind!r}")


def inject_fault(design: Design, fault: Fault) -> Design:
    """A copy of *design* with *fault* applied (single-configuration)."""
    if design.multi_configuration:
        raise ValueError("fault injection supports single-configuration "
                         "designs")
    config = design.configurations[0]
    datapath, fsm = _copy_configuration(config)
    _apply(fault, datapath, fsm)

    rtg = Rtg(design.rtg.name)
    ref = design.rtg.configurations[config.name]
    rtg.add_configuration(config.name, datapath_file=ref.datapath_file,
                          fsm_file=ref.fsm_file, datapath=datapath,
                          fsm=fsm, final=True)
    for decl in design.rtg.memories.values():
        rtg.add_memory(decl.name, decl.width, decl.depth, role=decl.role)
    mutated = Configuration(config.name, datapath, fsm, config.cfg,
                            config.schedule, config.binding)
    return Design(design.name, design.word_width, design.arrays,
                  design.params, [mutated], rtg, design.function,
                  design.source)


# ----------------------------------------------------------------------
# Campaign
# ----------------------------------------------------------------------
def run_campaign(design: Design, func: Callable,
                 inputs: Optional[Mapping] = None,
                 *,
                 faults: Optional[List[Fault]] = None,
                 limit_per_kind: Optional[int] = None,
                 max_cycles: int = 1_000_000,
                 seed: Optional[int] = None,
                 sample: Optional[int] = None) -> CampaignResult:
    """Inject each fault and record whether verification catches it.

    The unmutated design must verify cleanly first (a failing baseline
    would make every verdict meaningless).
    """
    baseline = verify_design(design, func, inputs, max_cycles=max_cycles)
    if not baseline.passed:
        raise ValueError(
            f"baseline design does not verify:\n{baseline.summary()}"
        )

    config = design.configurations[0]
    if faults is None:
        faults = enumerate_faults(config.datapath, config.fsm,
                                  limit_per_kind=limit_per_kind)
    if sample is not None and sample < len(faults):
        rng = random.Random(seed if seed is not None else 2005)
        faults = rng.sample(faults, sample)

    result = CampaignResult()
    for fault in faults:
        try:
            mutated = inject_fault(design, fault)
            outcome = verify_design(mutated, func, inputs,
                                    max_cycles=max_cycles)
        except (SimulationError, ValueError, KeyError) as exc:
            result.verdicts.append(FaultVerdict(
                fault, "crashed", note=f"{type(exc).__name__}: {exc}"))
            continue
        if outcome.passed:
            result.verdicts.append(FaultVerdict(fault, "survived"))
        else:
            failing = ", ".join(check.memory
                                for check in outcome.failed_checks())
            result.verdicts.append(FaultVerdict(
                fault, "detected", note=f"mismatch in {failing}"))
    return result
