"""The translation engine: pluggable backends per (dialect, target).

In the paper, XSLT stylesheets turn each XML dialect into the language a
tool needs — Hades netlists for simulation, Java for FSM/RTG behaviour,
``dot`` for visualization — and "users [can] define their own XSL
translation rules to output representations using the chosen language
(e.g., Verilog, VHDL, SystemC)".  This module is the equivalent extension
point: a registry keyed by (source kind, target name), where the source
kind is the IR class (Datapath, Fsm, Rtg).

Built-in targets registered by this package:

======== ======================================= =======================
target    produces                                paper analogue
======== ======================================= =======================
dot       Graphviz source                         "to dotty"
python    executable Python source                "to java"
vhdl      VHDL source                             user-defined XSL
verilog   Verilog source                          user-defined XSL
======== ======================================= =======================

(The simulator builder in :mod:`repro.translate.to_sim` — the paper's
"to hds" — returns live objects rather than text, so it has its own entry
point, but it is also reachable here under the target name ``sim``.)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple, Type

__all__ = ["TranslationEngine", "TranslationError", "default_engine",
           "register_translation", "translate"]


class TranslationError(ValueError):
    """No backend matches, or the backend rejected its input."""


Backend = Callable[..., Any]


class TranslationEngine:
    """A registry of translation backends."""

    def __init__(self) -> None:
        self._backends: Dict[Tuple[Type, str], Backend] = {}

    def register(self, source_type: Type, target: str,
                 backend: Backend = None):
        """Register *backend* for *source_type* → *target*.

        Usable directly or as a decorator::

            @engine.register(Datapath, "firrtl")
            def datapath_to_firrtl(datapath): ...
        """
        if backend is None:
            def decorate(func: Backend) -> Backend:
                self.register(source_type, target, func)
                return func

            return decorate
        key = (source_type, target)
        if key in self._backends:
            raise TranslationError(
                f"backend for {source_type.__name__} -> {target!r} "
                f"already registered"
            )
        self._backends[key] = backend
        return backend

    def translate(self, obj: Any, target: str, **options: Any) -> Any:
        """Dispatch on ``type(obj)`` (including base classes)."""
        for klass in type(obj).__mro__:
            backend = self._backends.get((klass, target))
            if backend is not None:
                return backend(obj, **options)
        known = self.targets_for(type(obj))
        raise TranslationError(
            f"no backend translates {type(obj).__name__} to {target!r} "
            f"(available targets: {known or 'none'})"
        )

    def targets_for(self, source_type: Type) -> List[str]:
        targets = {t for (klass, t) in self._backends
                   if klass in source_type.__mro__}
        return sorted(targets)

    def sources_for(self, target: str) -> List[str]:
        return sorted({klass.__name__ for (klass, t) in self._backends
                       if t == target})


#: the process-wide engine pre-loaded with the built-in backends
default_engine = TranslationEngine()


def register_translation(source_type: Type, target: str):
    """Decorator registering a backend on the default engine."""
    return default_engine.register(source_type, target)


def translate(obj: Any, target: str, **options: Any) -> Any:
    """Translate *obj* using the default engine."""
    return default_engine.translate(obj, target, **options)
