"""Translation backends: the XSLT-equivalent layer of the infrastructure.

* :mod:`repro.translate.engine` — the pluggable backend registry
* :mod:`repro.translate.to_sim` — datapath+FSM -> live simulation ("to hds")
* :mod:`repro.translate.to_python` — FSM/RTG -> Python source ("to java")
* :mod:`repro.translate.to_dot` — IR -> Graphviz ("to dotty")
* :mod:`repro.translate.to_vhdl` / ``to_verilog`` — HDL text emitters
"""

from .engine import (TranslationEngine, TranslationError, default_engine,
                     register_translation, translate)
from .to_dot import datapath_to_dot, fsm_to_dot, rtg_to_dot
from .to_python import (GeneratedFsmBehavior, GeneratedRtgControl,
                        InterpretedFsmBehavior, InterpretedRtgControl,
                        compile_fsm, compile_rtg, fsm_to_python,
                        rtg_to_python)
from .to_sim import (FsmController, SimDesign, build_simulation,
                     check_interface)
from .to_verilog import datapath_to_verilog, fsm_to_verilog, rtg_to_verilog
from .to_vhdl import datapath_to_vhdl, fsm_to_vhdl, rtg_to_vhdl

__all__ = [
    "TranslationEngine", "TranslationError", "default_engine",
    "register_translation", "translate",
    "datapath_to_dot", "fsm_to_dot", "rtg_to_dot",
    "fsm_to_python", "compile_fsm", "GeneratedFsmBehavior",
    "InterpretedFsmBehavior",
    "rtg_to_python", "compile_rtg", "GeneratedRtgControl",
    "InterpretedRtgControl",
    "build_simulation", "SimDesign", "FsmController", "check_interface",
    "datapath_to_vhdl", "fsm_to_vhdl", "rtg_to_vhdl",
    "datapath_to_verilog", "fsm_to_verilog", "rtg_to_verilog",
]
