"""VHDL backend: datapath and FSM as synthesizable-style VHDL text.

The paper notes users can add translation rules for "the chosen language
(e.g., Verilog, VHDL, SystemC)"; this module is the VHDL instance of
that extension point.  The datapath becomes one self-contained entity
(no external component library needed): each operator instance is a
concurrent statement or process implementing its behaviour, registers
and SRAMs are clocked processes, and the control/status interface is the
port list.  The FSM becomes the classic two-process state machine.

These emitters target *plausible, reviewable* VHDL mirroring the
simulated semantics (wrapping arithmetic, floor division helpers,
write-through RAM); pin-accurate synthesis sign-off is out of scope for
a functional-test infrastructure.
"""

from __future__ import annotations

from typing import Dict, List

from ..hdl.model.datapath import ComponentDecl, Datapath
from ..hdl.model.fsm import Fsm
from ..hdl.model.rtg import Rtg
from .engine import TranslationError, register_translation

__all__ = ["datapath_to_vhdl", "fsm_to_vhdl", "rtg_to_vhdl"]


def _slv(width: int) -> str:
    if width == 1:
        return "std_logic"
    return f"std_logic_vector({width - 1} downto 0)"


def _literal(value: int, width: int) -> str:
    value &= (1 << width) - 1
    if width == 1:
        return f"'{value}'"
    return f'std_logic_vector(to_unsigned({value}, {width}))'


_HELPERS = """\
  -- floor division / modulo (Python semantics; VHDL's / truncates)
  function f_div(a, b : signed) return signed is
    variable q : signed(a'range);
  begin
    if b = 0 then
      return to_signed(0, a'length);
    end if;
    q := a / b;
    if (a rem b) /= 0 and ((a < 0) /= (b < 0)) then
      q := q - 1;
    end if;
    return q;
  end function;

  function f_mod(a, b : signed) return signed is
    variable r : signed(a'range);
  begin
    if b = 0 then
      return to_signed(0, a'length);
    end if;
    r := a rem b;
    if r /= 0 and ((r < 0) /= (b < 0)) then
      r := r + b;
    end if;
    return r;
  end function;
"""


class _VhdlDatapathEmitter:
    def __init__(self, datapath: Datapath) -> None:
        datapath.validate()
        self.dp = datapath
        self.lines: List[str] = []
        #: (component, port) -> signal name inside the architecture
        self.wires: Dict[tuple, str] = {}
        for net in datapath.nets.values():
            self.wires[(net.source.component, net.source.port)] = net.name
            for sink in net.sinks:
                self.wires[(sink.component, sink.port)] = net.name
        for line in datapath.controls.values():
            for target in line.targets:
                self.wires[(target.component, target.port)] = line.name
        for status in datapath.statuses.values():
            key = (status.source.component, status.source.port)
            self.wires.setdefault(key, status.name)

    def wire(self, component: str, port: str) -> str:
        try:
            return self.wires[(component, port)]
        except KeyError:
            raise TranslationError(
                f"component {component!r}: port {port!r} is unconnected; "
                f"the VHDL backend requires fully wired operators"
            ) from None

    def signed(self, component: str, port: str) -> str:
        return f"signed({self.wire(component, port)})"

    # ------------------------------------------------------------------
    def emit(self) -> str:
        out = self.lines
        out.append("library ieee;")
        out.append("use ieee.std_logic_1164.all;")
        out.append("use ieee.numeric_std.all;")
        out.append("")
        out.append(f"entity {self.dp.name} is")
        out.append("  port (")
        ports = ["    clk : in std_logic"]
        for line in self.dp.controls.values():
            ports.append(f"    {line.name} : in {_slv(line.width)}")
        for status in self.dp.statuses.values():
            ports.append(f"    {status.name} : out std_logic")
        out.append(";\n".join(ports))
        out.append("  );")
        out.append(f"end entity {self.dp.name};")
        out.append("")
        out.append(f"architecture rtl of {self.dp.name} is")
        for net in self.dp.nets.values():
            out.append(f"  signal {net.name} : {_slv(net.width)};")
        out.append(_HELPERS)
        out.append("begin")
        for decl in self.dp.components.values():
            self.emit_component(decl)
        for status in self.dp.statuses.values():
            key = (status.source.component, status.source.port)
            inner = self.wires[key]
            if inner != status.name:
                out.append(f"  {status.name} <= {inner};")
        out.append(f"end architecture rtl;")
        return "\n".join(out) + "\n"

    # ------------------------------------------------------------------
    def emit_component(self, decl: ComponentDecl) -> None:
        handler = getattr(self, f"_emit_{decl.type}", None)
        if handler is None:
            handler = self._emit_binary_like
        handler(decl)

    # -- leaf emitters ----------------------------------------------------
    _BINARY_VHDL = {
        "add": "{a} + {b}",
        "sub": "{a} - {b}",
        "mul": "resize({a} * {b}, {w})",
        "and": "{a} and {b}",
        "or": "{a} or {b}",
        "xor": "{a} xor {b}",
        "min": "minimum({a}, {b})",
        "max": "maximum({a}, {b})",
        "div": "{a} / {b}",
        "rem": "{a} rem {b}",
        "fdiv": "f_div({a}, {b})",
        "fmod": "f_mod({a}, {b})",
        "shl": "shift_left({a}, to_integer(unsigned({braw})))",
        "ashr": "shift_right({a}, to_integer(unsigned({braw})))",
        "lshr": ("signed(shift_right(unsigned({araw}), "
                 "to_integer(unsigned({braw}))))"),
    }

    _COMPARE_VHDL = {"eq": "=", "ne": "/=", "lt": "<", "le": "<=",
                     "gt": ">", "ge": ">="}

    def _emit_binary_like(self, decl: ComponentDecl) -> None:
        name = decl.name
        if decl.type in self._COMPARE_VHDL:
            op = self._COMPARE_VHDL[decl.type]
            self.lines.append(
                f"  {self.wire(name, 'y')} <= '1' when "
                f"{self.signed(name, 'a')} {op} {self.signed(name, 'b')} "
                f"else '0';  -- {name}"
            )
            return
        if decl.type in self._BINARY_VHDL:
            fields = {"w": decl.width}
            for port in ("a", "b"):
                if (name, port) in self.wires:
                    fields[port] = self.signed(name, port)
                    fields[port + "raw"] = self.wire(name, port)
            expr = self._BINARY_VHDL[decl.type].format(**fields)
            self.lines.append(
                f"  {self.wire(name, 'y')} <= std_logic_vector({expr});"
                f"  -- {name}"
            )
            return
        raise TranslationError(
            f"no VHDL emitter for operator type {decl.type!r}"
        )

    def _emit_const(self, decl: ComponentDecl) -> None:
        value = int(decl.param("value", "0"), 0)
        target = self.wire(decl.name, "y")
        self.lines.append(
            f"  {target} <= {_literal(value, decl.width)};  -- {decl.name}"
        )

    def _emit_not(self, decl: ComponentDecl) -> None:
        self.lines.append(
            f"  {self.wire(decl.name, 'y')} <= "
            f"not {self.wire(decl.name, 'a')};  -- {decl.name}"
        )

    def _emit_neg(self, decl: ComponentDecl) -> None:
        self.lines.append(
            f"  {self.wire(decl.name, 'y')} <= std_logic_vector("
            f"-{self.signed(decl.name, 'a')});  -- {decl.name}"
        )

    def _emit_abs(self, decl: ComponentDecl) -> None:
        self.lines.append(
            f"  {self.wire(decl.name, 'y')} <= std_logic_vector("
            f"abs({self.signed(decl.name, 'a')}));  -- {decl.name}"
        )

    def _emit_sext(self, decl: ComponentDecl) -> None:
        self.lines.append(
            f"  {self.wire(decl.name, 'y')} <= std_logic_vector(resize("
            f"{self.signed(decl.name, 'a')}, {decl.width}));"
            f"  -- {decl.name}"
        )

    def _emit_zext(self, decl: ComponentDecl) -> None:
        self.lines.append(
            f"  {self.wire(decl.name, 'y')} <= std_logic_vector(resize("
            f"unsigned({self.wire(decl.name, 'a')}), {decl.width}));"
            f"  -- {decl.name}"
        )

    def _emit_trunc(self, decl: ComponentDecl) -> None:
        self.lines.append(
            f"  {self.wire(decl.name, 'y')} <= "
            f"{self.wire(decl.name, 'a')}({decl.width - 1} downto 0);"
            f"  -- {decl.name}"
        )

    def _emit_mux(self, decl: ComponentDecl) -> None:
        name = decl.name
        inputs = sorted(
            (int(port[2:]), wire)
            for (component, port), wire in self.wires.items()
            if component == name and port.startswith("in")
            and port[2:].isdigit()
        )
        sel = self.wire(name, "sel")
        target = self.wire(name, "y")
        sel_width = max(1, (len(inputs) - 1).bit_length())
        lines = [f"  process({sel}" +
                 "".join(f", {wire}" for _, wire in inputs) + ")"]
        lines.append("  begin")
        lines.append(f"    case {sel} is")
        for index, wire in inputs:
            if len(inputs) == 1:
                choice = "others"
            else:
                choice = f"\"{index:0{sel_width}b}\"" if sel_width > 1 \
                    else f"'{index}'"
            lines.append(f"      when {choice} => {target} <= {wire};")
        if len(inputs) > 1:
            lines.append(f"      when others => {target} <= "
                         f"{inputs[0][1]};")
        lines.append("    end case;")
        lines.append(f"  end process;  -- {name}")
        self.lines.extend(lines)

    def _emit_reg(self, decl: ComponentDecl) -> None:
        name = decl.name
        d = self.wire(name, "d")
        q = self.wire(name, "q")
        enable = self.wires.get((name, "en"))
        lines = [f"  process(clk)  -- {name}", "  begin",
                 "    if rising_edge(clk) then"]
        if enable is not None:
            lines.append(f"      if {enable} = '1' then")
            lines.append(f"        {q} <= {d};")
            lines.append("      end if;")
        else:
            lines.append(f"      {q} <= {d};")
        lines.append("    end if;")
        lines.append("  end process;")
        self.lines.extend(lines)

    def _emit_sram(self, decl: ComponentDecl) -> None:
        name = decl.name
        memory = self.dp.memories[decl.param("memory")]
        addr = self.wire(name, "addr")
        dout = self.wires.get((name, "dout"))
        din = self.wires.get((name, "din"))
        we = self.wires.get((name, "we"))
        lines = [
            f"  blk_{name} : block  -- memory {memory.name!r}",
            f"    type t_{name} is array (0 to {memory.depth - 1}) of "
            f"{_slv(memory.width)};",
            f"    signal mem_{name} : t_{name};",
            "  begin",
        ]
        if dout is not None:
            lines.append(
                f"    {dout} <= mem_{name}(to_integer(unsigned({addr})));"
            )
        if we is not None and din is not None:
            lines.extend([
                "    process(clk)",
                "    begin",
                "      if rising_edge(clk) then",
                f"        if {we} = '1' then",
                f"          mem_{name}(to_integer(unsigned({addr}))) "
                f"<= {din};",
                "        end if;",
                "      end if;",
                "    end process;",
            ])
        lines.append(f"  end block blk_{name};")
        self.lines.extend(lines)

    _emit_rom = _emit_sram


@register_translation(Datapath, "vhdl")
def datapath_to_vhdl(datapath: Datapath) -> str:
    """Emit the datapath as one self-contained VHDL entity."""
    return _VhdlDatapathEmitter(datapath).emit()


@register_translation(Fsm, "vhdl")
def fsm_to_vhdl(fsm: Fsm) -> str:
    """Emit the control unit as a two-process VHDL state machine."""
    fsm.validate()
    out: List[str] = [
        "library ieee;",
        "use ieee.std_logic_1164.all;",
        "use ieee.numeric_std.all;",
        "",
        f"entity {fsm.name} is",
        "  port (",
    ]
    ports = ["    clk : in std_logic", "    rst : in std_logic"]
    for name in fsm.inputs:
        ports.append(f"    {name} : in std_logic")
    for decl in fsm.outputs.values():
        ports.append(f"    {decl.name} : out {_slv(decl.width)}")
    out.append(";\n".join(ports))
    out.extend(["  );", f"end entity {fsm.name};", ""])
    out.append(f"architecture rtl of {fsm.name} is")
    states = ", ".join(f"s_{name}" for name in fsm.states)
    out.append(f"  type t_state is ({states});")
    out.append(f"  signal state : t_state := s_{fsm.reset_state};")
    out.append("begin")
    # next-state process
    out.append("  process(clk)")
    out.append("  begin")
    out.append("    if rising_edge(clk) then")
    out.append("      if rst = '1' then")
    out.append(f"        state <= s_{fsm.reset_state};")
    out.append("      else")
    out.append("        case state is")
    for state in fsm.states.values():
        out.append(f"          when s_{state.name} =>")
        emitted_default = False
        conditional = [t for t in state.transitions if not t.unconditional]
        default = next((t for t in state.transitions if t.unconditional),
                       None)
        if conditional:
            for index, transition in enumerate(conditional):
                keyword = "if" if index == 0 else "elsif"
                out.append(f"            {keyword} "
                           f"{transition.condition.to_vhdl()} then")
                out.append(f"              state <= s_{transition.target};")
            if default is not None:
                out.append("            else")
                out.append(f"              state <= s_{default.target};")
            out.append("            end if;")
        elif default is not None:
            out.append(f"            state <= s_{default.target};")
        else:
            out.append(f"            state <= s_{state.name};  -- final")
    out.append("        end case;")
    out.append("      end if;")
    out.append("    end if;")
    out.append("  end process;")
    out.append("")
    # Moore output process
    out.append("  process(state)")
    out.append("  begin")
    for decl in fsm.outputs.values():
        out.append(f"    {decl.name} <= "
                   f"{_literal(decl.default, decl.width)};")
    out.append("    case state is")
    for state in fsm.states.values():
        assigns = [(output, value) for output, value in
                   state.assigns.items()]
        out.append(f"      when s_{state.name} =>")
        if not assigns:
            out.append("        null;")
        for output, value in assigns:
            width = fsm.outputs[output].width
            out.append(f"        {output} <= {_literal(value, width)};")
    out.append("    end case;")
    out.append("  end process;")
    out.append(f"end architecture rtl;")
    return "\n".join(out) + "\n"


@register_translation(Rtg, "vhdl")
def rtg_to_vhdl(rtg: Rtg) -> str:
    """Emit the reconfiguration controller as a VHDL sequencer skeleton.

    On a real platform reconfiguration is performed by a configuration
    controller (ICAP access etc.); this emitter produces the sequencing
    FSM that tells such a controller which bitstream to load next, plus
    the shared-memory inventory as comments.
    """
    rtg.validate()
    out: List[str] = [
        f"-- reconfiguration sequencer for design {rtg.name!r}",
        "-- shared memories (survive reconfiguration):",
    ]
    for decl in rtg.memories.values():
        out.append(f"--   {decl.name}: {decl.width}x{decl.depth} "
                   f"({decl.role})")
    out.extend([
        "library ieee;",
        "use ieee.std_logic_1164.all;",
        "use ieee.numeric_std.all;",
        "",
        f"entity {rtg.name}_sequencer is",
        "  port (",
        "    clk : in std_logic;",
        "    rst : in std_logic;",
        "    cfg_done : in std_logic;  -- current configuration finished",
        "    load_request : out std_logic;",
        f"    load_index : out unsigned("
        f"{max(1, (len(rtg.configurations) - 1).bit_length()) - 1} "
        f"downto 0);",
        "    all_done : out std_logic",
        "  );",
        f"end entity {rtg.name}_sequencer;",
        "",
        f"architecture rtl of {rtg.name}_sequencer is",
    ])
    names = list(rtg.configurations)
    states = ", ".join(f"c_{name}" for name in names) + ", c_finished"
    out.append(f"  type t_cfg is ({states});")
    out.append(f"  signal current : t_cfg := c_{rtg.start};")
    out.append("begin")
    out.append("  process(clk)")
    out.append("  begin")
    out.append("    if rising_edge(clk) then")
    out.append("      if rst = '1' then")
    out.append(f"        current <= c_{rtg.start};")
    out.append("      elsif cfg_done = '1' then")
    out.append("        case current is")
    for name in names:
        transitions = rtg.transitions_from(name)
        out.append(f"          when c_{name} =>")
        if transitions:
            default = next((t for t in transitions if t.unconditional),
                           None)
            target = default.target if default else transitions[0].target
            out.append(f"            current <= c_{target};")
        else:
            out.append("            current <= c_finished;")
    out.append("          when c_finished => null;")
    out.append("        end case;")
    out.append("      end if;")
    out.append("    end if;")
    out.append("  end process;")
    out.append("  all_done <= '1' when current = c_finished else '0';")
    out.append("  load_request <= '0' when current = c_finished else '1';")
    index_width = max(1, (len(names) - 1).bit_length())
    out.append("  with current select load_index <=")
    for position, name in enumerate(names):
        out.append(f"    to_unsigned({position}, {index_width}) "
                   f"when c_{name},")
    out.append(f"    to_unsigned(0, {index_width}) when others;")
    out.append("end architecture rtl;")
    return "\n".join(out) + "\n"
