"""Build a live simulation from a datapath + FSM — the paper's "to hds".

The datapath netlist is instantiated through the operator catalog, the
control unit becomes a :class:`FsmController` (driving control lines and
sampling status lines at every clock edge), and the result is wrapped in
a :class:`SimDesign` handle the test harness runs until ``done``.

Memory resources are bound to live :class:`MemoryImage` objects supplied
by the caller (or created/loaded from ``init`` files), so the golden
comparison and cross-configuration sharing operate on the same storage
the simulated SRAM ports read and write.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..hdl.model.datapath import Datapath
from ..hdl.model.fsm import DONE_OUTPUT, Fsm
from ..operators.catalog import BuildContext, build_operator
from ..sim.backends import create_simulator
from ..sim.component import Sequential
from ..sim.errors import ElaborationError, SimulationTimeout
from ..sim.kernel import Simulator
from ..sim.signal import Signal
from ..util.files import MemoryImage, load_memory_file
from .engine import register_translation
from .to_python import InterpretedFsmBehavior, compile_fsm

__all__ = ["FsmController", "SimDesign", "build_simulation",
           "check_interface"]


def check_interface(datapath: Datapath, fsm: Fsm) -> None:
    """The FSM and datapath must agree on control and status lines."""
    for line in datapath.controls.values():
        decl = fsm.outputs.get(line.name)
        if decl is None:
            raise ElaborationError(
                f"datapath control line {line.name!r} is not an FSM output"
            )
        if decl.width != line.width:
            raise ElaborationError(
                f"control line {line.name!r}: datapath expects width "
                f"{line.width}, FSM declares {decl.width}"
            )
    for name in fsm.inputs:
        if name not in datapath.statuses:
            raise ElaborationError(
                f"FSM input {name!r} is not a datapath status line"
            )


class FsmController(Sequential):
    """The control unit as a simulation component.

    At every clock edge it samples the status signals (pre-edge values),
    advances the state via the behaviour object, and stages the *diff*
    between the old and new states' Moore output vectors (sound because
    control lines have no other driver; diffs are cached per state pair).
    """

    def __init__(self, name: str, behavior,
                 status_signals: Dict[str, Signal],
                 output_signals: Dict[str, Signal],
                 start_signal: Optional[Signal] = None) -> None:
        super().__init__(name, clock_enable=None)
        self.behavior = behavior
        self.status_signals = status_signals
        self.output_signals = output_signals
        self.state = behavior.reset_state
        self.transitions = 0
        #: optional per-edge observer called ``hook(state, next_state)``
        #: (self-loops included) — how :class:`repro.obs.CoverageCollector`
        #: sees transitions under the event-driven kernels; ``None`` costs
        #: a single identity check per edge
        self.coverage_hook = None
        #: optional start/done handshake for processor coupling: while
        #: idle the FSM holds its reset state until ``start`` rises; once
        #: finished it holds ``done`` until ``start`` falls, then returns
        #: to idle so the accelerator can be invoked again
        self.start_signal = start_signal
        self.invocations = 0
        self._idle = start_signal is not None
        # generated behaviours expose a per-state dispatch table; using
        # it directly saves a call per clock edge on the hot path
        self._dispatch = getattr(behavior, "transitions", None)
        # per-state drive lists, built on first visit: eager construction
        # was O(states x outputs) per elaboration, and the compiled
        # backends only ever touch the current state's list
        self._vectors: Dict[str, List[Tuple[Signal, int]]] = {}
        # per state-pair output *diffs*, built lazily: control lines are
        # driven only by this controller, so two consecutive Moore
        # vectors differ exactly where the signals must change — driving
        # the diff instead of the full vector is the controller's main
        # per-cycle saving on wide control interfaces
        self._diffs: Dict[Tuple[str, str], List[Tuple[Signal, int]]] = {}

    # ------------------------------------------------------------------
    def _vector_items(self, state: str) -> List[Tuple[Signal, int]]:
        items = self._vectors.get(state)
        if items is None:
            items = [(self.output_signals[output], value)
                     for output, value
                     in self.behavior.output_vectors[state].items()]
            self._vectors[state] = items
        return items

    def apply_state_outputs(self, sim: Simulator) -> None:
        for signal, value in self._vector_items(self.state):
            sim.drive(signal, value)

    def reset(self, sim: Simulator) -> None:
        self.state = self.behavior.reset_state
        self.apply_state_outputs(sim)

    @property
    def in_final_state(self) -> bool:
        return self.state in self.behavior.finals

    def on_edge(self, sim: Simulator) -> None:
        if self.start_signal is not None:
            if self._idle:
                if not self.start_signal.value:
                    return  # parked in the reset state, waiting for start
                self._idle = False
                self.invocations += 1
            elif self.in_final_state:
                if self.start_signal.value:
                    return  # hold done high until the host drops start
                # handshake complete: back to idle for the next call
                self._idle = True
                self.state = self.behavior.reset_state
                self.transitions += 1
                for signal, value in self._vector_items(self.state):
                    sim.drive(signal, value)
                return
        env = {name: signal.value
               for name, signal in self.status_signals.items()}
        if self._dispatch is not None:
            next_state = self._dispatch[self.state](env)
        else:
            next_state = self.behavior.next_state(self.state, env)
        if self.coverage_hook is not None:
            self.coverage_hook(self.state, next_state)
        if next_state != self.state:
            key = (self.state, next_state)
            diff = self._diffs.get(key)
            if diff is None:
                current = self.behavior.output_vectors[self.state]
                upcoming = self.behavior.output_vectors[next_state]
                diff = [(self.output_signals[name], value)
                        for name, value in upcoming.items()
                        if current[name] != value]
                self._diffs[key] = diff
            self.state = next_state
            self.transitions += 1
            for signal, value in diff:
                sim.drive(signal, value)

    def signals(self):
        return (*self.status_signals.values(),
                *self.output_signals.values())


class SimDesign:
    """A built design: simulator, controller, memories and run helpers."""

    def __init__(self, sim: Simulator, datapath: Datapath, fsm: Fsm,
                 controller: FsmController,
                 memories: Dict[str, MemoryImage],
                 output_signals: Dict[str, Signal],
                 status_signals: Dict[str, Signal]) -> None:
        self.sim = sim
        self.datapath = datapath
        self.fsm = fsm
        self.controller = controller
        self.memories = memories
        self.output_signals = output_signals
        self.status_signals = status_signals

    @property
    def done_signal(self) -> Optional[Signal]:
        return self.output_signals.get(DONE_OUTPUT)

    @property
    def done(self) -> bool:
        done = self.done_signal
        return bool(done.value) if done is not None else \
            self.controller.in_final_state

    def run_to_done(self, max_cycles: int = 10_000_000) -> int:
        """Run until the design asserts ``done``; returns cycles used."""
        try:
            done = self.done_signal
            if done is not None:
                # signal-based form: identical semantics to the generic
                # predicate, but backends that compile the design (the
                # CompiledSimulator) can recognise a Moore control line
                # and run their specialized loop
                return self.sim.run_until_high(done, max_cycles=max_cycles)
            return self.sim.run_until(lambda: self.done,
                                      max_cycles=max_cycles)
        except SimulationTimeout:
            raise SimulationTimeout(
                f"design {self.datapath.name!r} did not finish within "
                f"{max_cycles} cycles (state {self.controller.state!r})",
                max_cycles,
            ) from None

    def memory(self, name: str) -> MemoryImage:
        try:
            return self.memories[name]
        except KeyError:
            raise ElaborationError(
                f"design has no memory {name!r} "
                f"(have: {sorted(self.memories)})"
            ) from None

    def trace(self, path: Union[str, Path],
              signals: Optional[List[Signal]] = None):
        """Open a VCD waveform dump of this design (context manager).

        The paper lists "access to values on certain connections" among
        the facilities simulation provides over on-FPGA testing; this
        exposes it as an industry-standard artifact::

            with design.trace("run.vcd"):
                design.run_to_done()
        """
        from ..sim.vcd import VcdWriter

        return VcdWriter(self.sim, path, signals=signals,
                         module=self.datapath.name)

    def release(self) -> None:
        """Retire this elaboration: detach SRAM ports from their images.

        Call when the hardware is replaced (reconfiguration) while the
        memory images live on — otherwise stale ports keep observing
        image writes.
        """
        for component in self.sim.components.values():
            detach = getattr(component, "detach", None)
            if detach is not None:
                detach()

    def __repr__(self) -> str:
        return (f"SimDesign({self.datapath.name!r}, "
                f"state={self.controller.state!r}, done={self.done})")


def _resolve_memories(datapath: Datapath,
                      memories: Optional[Dict[str, MemoryImage]],
                      init_dir: Optional[Union[str, Path]]) -> Dict[str, MemoryImage]:
    """Bind every declared memory resource to a live image."""
    bound: Dict[str, MemoryImage] = dict(memories or {})
    for decl in datapath.memories.values():
        image = bound.get(decl.name)
        if image is None:
            if decl.init and init_dir is not None:
                image = load_memory_file(Path(init_dir) / decl.init,
                                         name=decl.name)
            else:
                image = MemoryImage(decl.width, decl.depth, name=decl.name)
            bound[decl.name] = image
        if image.width != decl.width or image.depth != decl.depth:
            raise ElaborationError(
                f"memory {decl.name!r}: bound image is "
                f"{image.width}x{image.depth}, declaration says "
                f"{decl.width}x{decl.depth}"
            )
    return bound


def build_simulation(datapath: Datapath, fsm: Fsm,
                     memories: Optional[Dict[str, MemoryImage]] = None,
                     *,
                     sim: Optional[Simulator] = None,
                     fsm_mode: str = "generated",
                     backend: str = "event",
                     clock_period: int = 10,
                     init_dir: Optional[Union[str, Path]] = None,
                     start_signal: Optional[Signal] = None) -> SimDesign:
    """Elaborate *datapath* + *fsm* into a runnable :class:`SimDesign`.

    ``fsm_mode`` selects the control-unit execution strategy:
    ``"generated"`` (XML → Python source → compiled, the paper's approach)
    or ``"interpreted"`` (object-model walk, the ablation baseline).

    ``backend`` selects the simulation kernel by name (see
    :data:`repro.sim.SIMULATOR_BACKENDS`); ignored when an explicit
    *sim* instance is passed.

    ``start_signal`` (a 1-bit signal in *sim*) enables the start/done
    handshake used when coupling the accelerator to a host processor
    (see :mod:`repro.cosim`): the control unit idles until start rises
    and re-arms once the host acknowledges ``done`` by dropping start.
    """
    datapath.validate()
    fsm.validate()
    check_interface(datapath, fsm)

    if sim is None:
        sim = create_simulator(backend, name=datapath.name)
    sim.clock_domain("clk", period=clock_period)

    bound_memories = _resolve_memories(datapath, memories, init_dir)

    # --- signals -------------------------------------------------------
    port_signals: Dict[Tuple[str, str], Signal] = {}

    def bind(component: str, port: str, signal: Signal) -> None:
        key = (component, port)
        if key in port_signals:
            raise ElaborationError(
                f"port {component}.{port} bound twice during elaboration"
            )
        port_signals[key] = signal

    for net in datapath.nets.values():
        signal = sim.signal(net.name, net.width)
        bind(net.source.component, net.source.port, signal)
        for sink in net.sinks:
            bind(sink.component, sink.port, signal)

    output_signals: Dict[str, Signal] = {}
    for line in datapath.controls.values():
        signal = sim.signal(line.name, line.width)
        output_signals[line.name] = signal
        for target in line.targets:
            bind(target.component, target.port, signal)
    # FSM outputs with no datapath target (e.g. 'done') still get signals
    for decl in fsm.outputs.values():
        if decl.name not in output_signals:
            output_signals[decl.name] = sim.signal(decl.name, decl.width)

    status_signals: Dict[str, Signal] = {}
    for status in datapath.statuses.values():
        key = (status.source.component, status.source.port)
        existing = port_signals.get(key)
        if existing is None:
            signal = sim.signal(status.name, 1)
            bind(status.source.component, status.source.port, signal)
            status_signals[status.name] = signal
        else:
            status_signals[status.name] = existing

    # --- components ----------------------------------------------------
    # group port bindings per component in one pass: the per-component
    # filtering comprehension this replaces was O(components x ports) and
    # dominated elaboration on large datapaths
    ports_by_component: Dict[str, Dict[str, Signal]] = {}
    for (component, port), signal in port_signals.items():
        ports_by_component.setdefault(component, {})[port] = signal
    ctx = BuildContext(sim, bound_memories)
    for decl in datapath.components.values():
        ports = ports_by_component.get(decl.name, {})
        build_operator(ctx, decl.type, decl.name, ports, dict(decl.params))

    # --- control unit ----------------------------------------------------
    if fsm_mode == "generated":
        behavior = compile_fsm(fsm)
    elif fsm_mode == "interpreted":
        behavior = InterpretedFsmBehavior(fsm)
    else:
        raise ValueError(
            f"fsm_mode must be 'generated' or 'interpreted', got {fsm_mode!r}"
        )
    fsm_status = {name: status_signals[name] for name in fsm.inputs}
    controller = FsmController(f"{fsm.name}__ctl", behavior, fsm_status,
                               output_signals, start_signal=start_signal)
    sim.add(controller)
    controller.apply_state_outputs(sim)
    sim.settle()

    # Structural identity of what was just elaborated; the compiled and
    # traced backends use it as the persistent kernel-cache key.  Cleared
    # by the simulator if the design is mutated after elaboration.
    # (Imported here: repro.core pulls in translate at import time.)
    from ..core.kernelcache import datapath_digest, digest_parts, fsm_digest

    sim.design_digest = digest_parts(
        "design-v1", datapath_digest(datapath), fsm_digest(fsm),
        fsm_mode, start_signal is not None)

    return SimDesign(sim, datapath, fsm, controller, bound_memories,
                     output_signals, status_signals)


@register_translation(Datapath, "sim")
def _datapath_to_sim(datapath: Datapath, *, fsm: Fsm,
                     **options) -> SimDesign:
    return build_simulation(datapath, fsm, **options)
