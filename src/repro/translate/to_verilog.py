"""Verilog backend: datapath and FSM as Verilog-2001 text.

The Verilog sibling of :mod:`repro.translate.to_vhdl` — the second
instance of the paper's user-defined translation rules.  One module per
datapath (operators as continuous assignments, registers/RAMs as always
blocks) and one module per FSM (localparam state encoding, two always
blocks).
"""

from __future__ import annotations

from typing import Dict, List

from ..hdl.model.datapath import ComponentDecl, Datapath
from ..hdl.model.fsm import Fsm
from ..hdl.model.rtg import Rtg
from .engine import TranslationError, register_translation

__all__ = ["datapath_to_verilog", "fsm_to_verilog", "rtg_to_verilog"]


def _range(width: int) -> str:
    return f"[{width - 1}:0] " if width > 1 else ""


def _literal(value: int, width: int) -> str:
    value &= (1 << width) - 1
    return f"{width}'d{value}"


class _VerilogDatapathEmitter:
    def __init__(self, datapath: Datapath) -> None:
        datapath.validate()
        self.dp = datapath
        self.lines: List[str] = []
        self.wires: Dict[tuple, str] = {}
        self.wire_widths: Dict[str, int] = {}
        for net in datapath.nets.values():
            self.wires[(net.source.component, net.source.port)] = net.name
            self.wire_widths[net.name] = net.width
            for sink in net.sinks:
                self.wires[(sink.component, sink.port)] = net.name
        for line in datapath.controls.values():
            for target in line.targets:
                self.wires[(target.component, target.port)] = line.name
        for status in datapath.statuses.values():
            key = (status.source.component, status.source.port)
            self.wires.setdefault(key, status.name)
        #: wires driven from always blocks must be declared reg
        self.reg_wires: set = set()

    def wire(self, component: str, port: str) -> str:
        try:
            return self.wires[(component, port)]
        except KeyError:
            raise TranslationError(
                f"component {component!r}: port {port!r} is unconnected; "
                f"the Verilog backend requires fully wired operators"
            ) from None

    def signed(self, component: str, port: str) -> str:
        return f"$signed({self.wire(component, port)})"

    # ------------------------------------------------------------------
    def emit(self) -> str:
        body: List[str] = []
        for decl in self.dp.components.values():
            self.emit_component(decl, body)
        for status in self.dp.statuses.values():
            key = (status.source.component, status.source.port)
            inner = self.wires[key]
            if inner != status.name:
                body.append(f"  assign {status.name} = {inner};")

        out = self.lines
        ports = ["clk"] + [line.name for line in self.dp.controls.values()] \
            + [status.name for status in self.dp.statuses.values()]
        out.append(f"module {self.dp.name} (")
        out.append("  " + ",\n  ".join(ports))
        out.append(");")
        out.append("  input wire clk;")
        for line in self.dp.controls.values():
            out.append(f"  input wire {_range(line.width)}{line.name};")
        for status in self.dp.statuses.values():
            out.append(f"  output wire {status.name};")
        for net in self.dp.nets.values():
            kind = "reg" if net.name in self.reg_wires else "wire"
            out.append(f"  {kind} {_range(net.width)}{net.name};")
        out.append("")
        out.extend(body)
        out.append("endmodule")
        return "\n".join(out) + "\n"

    # ------------------------------------------------------------------
    def emit_component(self, decl: ComponentDecl, body: List[str]) -> None:
        handler = getattr(self, f"_emit_{decl.type}", None)
        if handler is None:
            handler = self._emit_binary_like
        handler(decl, body)

    _BINARY = {
        "add": "{a} + {b}", "sub": "{a} - {b}", "mul": "{a} * {b}",
        "and": "{a} & {b}", "or": "{a} | {b}", "xor": "{a} ^ {b}",
        "shl": "{a} << {braw}", "ashr": "{a} >>> {braw}",
        "lshr": "{araw} >> {braw}",
        "div": "{a} / {b}", "rem": "{a} % {b}",
        "min": "(({a} < {b}) ? {araw} : {braw})",
        "max": "(({a} > {b}) ? {araw} : {braw})",
    }

    _COMPARE = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
                "gt": ">", "ge": ">="}

    def _fields(self, name: str) -> Dict[str, str]:
        fields: Dict[str, str] = {}
        for port in ("a", "b"):
            if (name, port) in self.wires:
                fields[port] = self.signed(name, port)
                fields[port + "raw"] = self.wire(name, port)
        return fields

    def _emit_binary_like(self, decl: ComponentDecl,
                          body: List[str]) -> None:
        name = decl.name
        if decl.type in self._COMPARE:
            op = self._COMPARE[decl.type]
            body.append(
                f"  assign {self.wire(name, 'y')} = "
                f"{self.signed(name, 'a')} {op} {self.signed(name, 'b')};"
                f"  // {name}"
            )
            return
        if decl.type in ("fdiv", "fmod"):
            self._emit_floor_div(decl, body)
            return
        if decl.type in self._BINARY:
            expr = self._BINARY[decl.type].format(**self._fields(name))
            body.append(
                f"  assign {self.wire(name, 'y')} = {expr};  // {name}"
            )
            return
        raise TranslationError(
            f"no Verilog emitter for operator type {decl.type!r}"
        )

    def _emit_floor_div(self, decl: ComponentDecl,
                        body: List[str]) -> None:
        """Floor division/modulo from Verilog's truncating / and %."""
        name = decl.name
        a = self.signed(name, "a")
        b = self.signed(name, "b")
        y = self.wire(name, "y")
        if decl.type == "fdiv":
            body.append(
                f"  assign {y} = ({b} == 0) ? 0 : "
                f"(({a} % {b} != 0) && (({a} < 0) != ({b} < 0))) ? "
                f"({a} / {b}) - 1 : ({a} / {b});  // {name} (floor)"
            )
        else:
            body.append(
                f"  assign {y} = ({b} == 0) ? 0 : "
                f"(({a} % {b} != 0) && (({a} < 0) != ({b} < 0))) ? "
                f"({a} % {b}) + {b} : ({a} % {b});  // {name} (floor)"
            )

    def _emit_const(self, decl: ComponentDecl, body: List[str]) -> None:
        value = int(decl.param("value", "0"), 0)
        body.append(
            f"  assign {self.wire(decl.name, 'y')} = "
            f"{_literal(value, decl.width)};  // {decl.name}"
        )

    def _emit_not(self, decl: ComponentDecl, body: List[str]) -> None:
        body.append(
            f"  assign {self.wire(decl.name, 'y')} = "
            f"~{self.wire(decl.name, 'a')};  // {decl.name}"
        )

    def _emit_neg(self, decl: ComponentDecl, body: List[str]) -> None:
        body.append(
            f"  assign {self.wire(decl.name, 'y')} = "
            f"-{self.signed(decl.name, 'a')};  // {decl.name}"
        )

    def _emit_abs(self, decl: ComponentDecl, body: List[str]) -> None:
        a = self.signed(decl.name, "a")
        body.append(
            f"  assign {self.wire(decl.name, 'y')} = "
            f"({a} < 0) ? -{a} : {a};  // {decl.name}"
        )

    def _emit_sext(self, decl: ComponentDecl, body: List[str]) -> None:
        a = self.wire(decl.name, "a")
        in_width = self.wire_widths.get(a, decl.width)
        extra = decl.width - in_width
        body.append(
            f"  assign {self.wire(decl.name, 'y')} = "
            f"{{{{{extra}{{{a}[{in_width - 1}]}}}}, {a}}};  // {decl.name}"
        )

    def _emit_zext(self, decl: ComponentDecl, body: List[str]) -> None:
        body.append(
            f"  assign {self.wire(decl.name, 'y')} = "
            f"{self.wire(decl.name, 'a')};  // {decl.name} (zero-extend)"
        )

    def _emit_trunc(self, decl: ComponentDecl, body: List[str]) -> None:
        body.append(
            f"  assign {self.wire(decl.name, 'y')} = "
            f"{self.wire(decl.name, 'a')}[{decl.width - 1}:0];"
            f"  // {decl.name}"
        )

    def _emit_mux(self, decl: ComponentDecl, body: List[str]) -> None:
        name = decl.name
        inputs = sorted(
            (int(port[2:]), wire)
            for (component, port), wire in self.wires.items()
            if component == name and port.startswith("in")
            and port[2:].isdigit()
        )
        sel = self.wire(name, "sel")
        target = self.wire(name, "y")
        self.reg_wires.add(target)
        body.append(f"  always @(*) begin  // {name}")
        body.append(f"    case ({sel})")
        for index, wire in inputs:
            body.append(f"      {index}: {target} = {wire};")
        body.append(f"      default: {target} = {inputs[0][1]};")
        body.append("    endcase")
        body.append("  end")

    def _emit_reg(self, decl: ComponentDecl, body: List[str]) -> None:
        name = decl.name
        d = self.wire(name, "d")
        q = self.wire(name, "q")
        self.reg_wires.add(q)
        enable = self.wires.get((name, "en"))
        body.append(f"  always @(posedge clk) begin  // {name}")
        if enable is not None:
            body.append(f"    if ({enable}) {q} <= {d};")
        else:
            body.append(f"    {q} <= {d};")
        body.append("  end")

    def _emit_sram(self, decl: ComponentDecl, body: List[str]) -> None:
        name = decl.name
        memory = self.dp.memories[decl.param("memory")]
        addr = self.wire(name, "addr")
        dout = self.wires.get((name, "dout"))
        din = self.wires.get((name, "din"))
        we = self.wires.get((name, "we"))
        body.append(
            f"  reg {_range(memory.width)}mem_{name} "
            f"[0:{memory.depth - 1}];  // memory {memory.name!r}"
        )
        if dout is not None:
            body.append(f"  assign {dout} = mem_{name}[{addr}];")
        if we is not None and din is not None:
            body.append(f"  always @(posedge clk) begin")
            body.append(f"    if ({we}) mem_{name}[{addr}] <= {din};")
            body.append("  end")

    _emit_rom = _emit_sram


@register_translation(Datapath, "verilog")
def datapath_to_verilog(datapath: Datapath) -> str:
    """Emit the datapath as one self-contained Verilog module."""
    return _VerilogDatapathEmitter(datapath).emit()


@register_translation(Fsm, "verilog")
def fsm_to_verilog(fsm: Fsm) -> str:
    """Emit the control unit as a two-always-block Verilog FSM."""
    fsm.validate()
    state_bits = max(1, (len(fsm.states) - 1).bit_length())
    out: List[str] = []
    ports = ["clk", "rst"] + list(fsm.inputs) + list(fsm.outputs)
    out.append(f"module {fsm.name} (")
    out.append("  " + ",\n  ".join(ports))
    out.append(");")
    out.append("  input wire clk;")
    out.append("  input wire rst;")
    for name in fsm.inputs:
        out.append(f"  input wire {name};")
    for decl in fsm.outputs.values():
        out.append(f"  output reg {_range(decl.width)}{decl.name};")
    out.append("")
    for index, name in enumerate(fsm.states):
        out.append(f"  localparam S_{name.upper()} = "
                   f"{_literal(index, state_bits)};")
    out.append(f"  reg {_range(state_bits)}state = "
               f"S_{fsm.reset_state.upper()};")
    out.append("")
    out.append("  always @(posedge clk) begin")
    out.append("    if (rst) begin")
    out.append(f"      state <= S_{fsm.reset_state.upper()};")
    out.append("    end else begin")
    out.append("      case (state)")
    for state in fsm.states.values():
        out.append(f"        S_{state.name.upper()}: begin")
        conditional = [t for t in state.transitions if not t.unconditional]
        default = next((t for t in state.transitions if t.unconditional),
                       None)
        if conditional:
            for index, transition in enumerate(conditional):
                keyword = "if" if index == 0 else "else if"
                out.append(f"          {keyword} "
                           f"({transition.condition.to_verilog()})")
                out.append(f"            state <= "
                           f"S_{transition.target.upper()};")
            if default is not None:
                out.append("          else")
                out.append(f"            state <= "
                           f"S_{default.target.upper()};")
        elif default is not None:
            out.append(f"          state <= S_{default.target.upper()};")
        else:
            out.append(f"          state <= S_{state.name.upper()};"
                       f"  // final")
        out.append("        end")
    out.append("      endcase")
    out.append("    end")
    out.append("  end")
    out.append("")
    out.append("  always @(*) begin")
    for decl in fsm.outputs.values():
        out.append(f"    {decl.name} = "
                   f"{_literal(decl.default, decl.width)};")
    out.append("    case (state)")
    for state in fsm.states.values():
        out.append(f"      S_{state.name.upper()}: begin")
        for output, value in state.assigns.items():
            width = fsm.outputs[output].width
            out.append(f"        {output} = {_literal(value, width)};")
        out.append("      end")
    out.append("      default: ;")
    out.append("    endcase")
    out.append("  end")
    out.append("endmodule")
    return "\n".join(out) + "\n"


@register_translation(Rtg, "verilog")
def rtg_to_verilog(rtg: Rtg) -> str:
    """Emit the reconfiguration sequencer as a Verilog module."""
    rtg.validate()
    names = list(rtg.configurations)
    index_bits = max(1, (len(names) - 1).bit_length())
    state_bits = max(1, len(names).bit_length())
    out: List[str] = [
        f"// reconfiguration sequencer for design '{rtg.name}'",
        "// shared memories (survive reconfiguration):",
    ]
    for decl in rtg.memories.values():
        out.append(f"//   {decl.name}: {decl.width}x{decl.depth} "
                   f"({decl.role})")
    out.append(f"module {rtg.name}_sequencer (")
    out.append("  clk, rst, cfg_done, load_request, load_index, all_done")
    out.append(");")
    out.append("  input wire clk;")
    out.append("  input wire rst;")
    out.append("  input wire cfg_done;")
    out.append("  output wire load_request;")
    out.append(f"  output reg {_range(index_bits)}load_index;")
    out.append("  output wire all_done;")
    out.append("")
    for position, name in enumerate(names):
        out.append(f"  localparam C_{name.upper()} = "
                   f"{_literal(position, state_bits)};")
    out.append(f"  localparam C_FINISHED = "
               f"{_literal(len(names), state_bits)};")
    out.append(f"  reg {_range(state_bits)}current = "
               f"C_{rtg.start.upper()};")
    out.append("")
    out.append("  always @(posedge clk) begin")
    out.append("    if (rst)")
    out.append(f"      current <= C_{rtg.start.upper()};")
    out.append("    else if (cfg_done) begin")
    out.append("      case (current)")
    for name in names:
        transitions = rtg.transitions_from(name)
        if transitions:
            default = next((t for t in transitions if t.unconditional),
                           None)
            target = default.target if default else transitions[0].target
            out.append(f"        C_{name.upper()}: current <= "
                       f"C_{target.upper()};")
        else:
            out.append(f"        C_{name.upper()}: current <= C_FINISHED;")
    out.append("        default: ;")
    out.append("      endcase")
    out.append("    end")
    out.append("  end")
    out.append("")
    out.append("  assign all_done = (current == C_FINISHED);")
    out.append("  assign load_request = !all_done;")
    out.append("  always @(*) begin")
    out.append("    case (current)")
    for position, name in enumerate(names):
        out.append(f"      C_{name.upper()}: load_index = "
                   f"{_literal(position, index_bits)};")
    out.append(f"      default: load_index = {_literal(0, index_bits)};")
    out.append("    endcase")
    out.append("  end")
    out.append("endmodule")
    return "\n".join(out) + "\n"
