"""Python code generation — the paper's "to java" stylesheets.

The paper translates the behavioural FSM XML into Java source that Hades
executes directly, and the RTG into Java that sequences the simulation
through the temporal partitions.  Here the targets are Python modules:

* :func:`fsm_to_python` emits the source of an executable FSM module
  (whose line count is the Table I "loJava FSM" analogue);
* :func:`compile_fsm` executes that source and wraps it in a
  :class:`GeneratedFsmBehavior`;
* :class:`InterpretedFsmBehavior` walks the FSM object model directly —
  the ablation baseline quantifying what code generation buys (A1);
* :func:`rtg_to_python` / :func:`compile_rtg` do the same for the RTG.

Both behaviour flavours satisfy one protocol consumed by the simulator
glue (:mod:`repro.translate.to_sim`): ``reset_state``, ``finals``,
``output_vectors`` and ``next_state(state, env)``.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional

from ..hdl.model.fsm import Fsm
from ..hdl.model.rtg import Rtg
from .engine import register_translation

__all__ = ["fsm_to_python", "compile_fsm", "GeneratedFsmBehavior",
           "InterpretedFsmBehavior", "rtg_to_python", "compile_rtg",
           "GeneratedRtgControl", "InterpretedRtgControl"]


# ----------------------------------------------------------------------
# FSM code generation
# ----------------------------------------------------------------------
@register_translation(Fsm, "python")
def fsm_to_python(fsm: Fsm) -> str:
    """Emit an executable Python module for *fsm*.

    The module contains the reset state, the final-state set, a
    precomputed full output vector per state, and a ``next_state``
    function compiled from the transition guards.
    """
    fsm.validate()
    lines: List[str] = [
        f'"""Control unit {fsm.name!r} -- generated, do not edit."""',
        "",
        f"NAME = {fsm.name!r}",
        f"RESET = {fsm.reset_state!r}",
        f"FINALS = frozenset({sorted(fsm.final_states)!r})",
        f"INPUTS = {list(fsm.inputs)!r}",
        "",
        "OUTPUT_WIDTHS = {",
    ]
    for decl in fsm.outputs.values():
        lines.append(f"    {decl.name!r}: {decl.width},")
    lines.append("}")
    lines.append("")
    lines.append("OUTPUT_VECTORS = {")
    for state_name in fsm.states:
        vector = fsm.output_vector(state_name)
        lines.append(f"    {state_name!r}: {{")
        for output, value in vector.items():
            lines.append(f"        {output!r}: {value},")
        lines.append("    },")
    lines.append("}")
    lines.append("")
    # one native transition function per state, dispatched through a
    # dict: O(1) per clock edge regardless of the FSM size (the reason
    # the paper generates Java instead of interpreting the XML)
    for index, state in enumerate(fsm.states.values()):
        lines.append("")
        lines.append(f"def _next_{index}(env):")
        lines.append(f'    """Transitions out of {state.name!r}."""')
        emitted_default = False
        for transition in state.transitions:
            if transition.unconditional:
                lines.append(f"    return {transition.target!r}")
                emitted_default = True
                break
            lines.append(f"    if {transition.condition.to_python()}:")
            lines.append(f"        return {transition.target!r}")
        if not emitted_default:
            # final states self-loop
            lines.append(f"    return {state.name!r}")
    lines.append("")
    lines.append("")
    lines.append("TRANSITIONS = {")
    for index, state_name in enumerate(fsm.states):
        lines.append(f"    {state_name!r}: _next_{index},")
    lines.append("}")
    lines.append("")
    lines.append("")
    lines.append("def next_state(state, env):")
    lines.append('    """Transition function; guards are tried in order."""')
    lines.append("    try:")
    lines.append("        return TRANSITIONS[state](env)")
    lines.append("    except KeyError:")
    lines.append("        raise ValueError(f\"unknown state {state!r}\") "
                 "from None")
    return "\n".join(lines) + "\n"


class GeneratedFsmBehavior:
    """Wraps an exec()'d generated FSM module in the behaviour protocol.

    ``code`` lets callers supply pre-compiled bytecode for *source* (the
    kernel cache does); when omitted the source is compiled here.
    """

    def __init__(self, source: str, code=None) -> None:
        self.source = source
        namespace: Dict[str, object] = {}
        if code is None:
            code = compile(source, "<generated-fsm>", "exec")
        exec(code, namespace)
        self.name: str = namespace["NAME"]  # type: ignore[assignment]
        self.reset_state: str = namespace["RESET"]  # type: ignore[assignment]
        self.finals: FrozenSet[str] = namespace["FINALS"]  # type: ignore[assignment]
        self.inputs: List[str] = namespace["INPUTS"]  # type: ignore[assignment]
        self.output_widths: Dict[str, int] = namespace["OUTPUT_WIDTHS"]  # type: ignore[assignment]
        self.output_vectors: Dict[str, Dict[str, int]] = \
            namespace["OUTPUT_VECTORS"]  # type: ignore[assignment]
        #: direct per-state dispatch table (hot path for the controller)
        self.transitions: Dict[str, Callable] = \
            namespace["TRANSITIONS"]  # type: ignore[assignment]
        self._next: Callable = namespace["next_state"]  # type: ignore[assignment]

    def next_state(self, state: str, env: Dict[str, int]) -> str:
        return self._next(state, env)


#: process-level behaviour memo — GeneratedFsmBehavior instances are
#: immutable (pure dispatch tables), so identical sources share one
_BEHAVIOR_MEMO: Dict[str, GeneratedFsmBehavior] = {}


def compile_fsm(fsm: Fsm) -> GeneratedFsmBehavior:
    """Generate and load executable behaviour for *fsm*.

    ``compile()`` and ``exec()`` of the generated module dominate
    elaboration time for large FSMs, so behaviour objects are memoised
    per process (they are stateless) and the bytecode additionally
    persists in the kernel cache so fresh processes skip ``compile()``.
    The memo key is the structural FSM digest — cheaper to compute than
    regenerating the module source, which a memo hit skips entirely.
    """
    from ..core.kernelcache import default_cache, digest_parts, fsm_digest

    key = digest_parts("fsm-module", fsm_digest(fsm))
    behavior = _BEHAVIOR_MEMO.get(key)
    if behavior is not None:
        return behavior
    source = fsm_to_python(fsm)
    cache = default_cache()
    _, code = cache.get("fsm", key)
    if code is None:
        code = compile(source, "<generated-fsm>", "exec")
        cache.put("fsm", key, {"kind": "fsm"}, code)
    behavior = GeneratedFsmBehavior(source, code=code)
    _BEHAVIOR_MEMO[key] = behavior
    return behavior


class InterpretedFsmBehavior:
    """Walks the FSM object model directly (no code generation).

    Kept as the ablation baseline: identical semantics, slower transition
    evaluation because every guard re-walks its expression tree.
    """

    def __init__(self, fsm: Fsm) -> None:
        fsm.validate()
        self._fsm = fsm
        self.name = fsm.name
        self.reset_state = fsm.reset_state
        self.finals = frozenset(fsm.final_states)
        self.inputs = list(fsm.inputs)
        self.output_widths = {d.name: d.width for d in fsm.outputs.values()}
        self.output_vectors = {
            name: fsm.output_vector(name) for name in fsm.states
        }

    def next_state(self, state: str, env: Dict[str, int]) -> str:
        return self._fsm.next_state(state, env)


# ----------------------------------------------------------------------
# RTG code generation
# ----------------------------------------------------------------------
@register_translation(Rtg, "python")
def rtg_to_python(rtg: Rtg) -> str:
    """Emit the Python module sequencing a multi-configuration design."""
    rtg.validate()
    lines: List[str] = [
        f'"""Reconfiguration controller {rtg.name!r} -- generated."""',
        "",
        f"NAME = {rtg.name!r}",
        f"START = {rtg.start!r}",
        f"FINALS = frozenset({sorted(rtg.final_configurations)!r})",
        "",
        "CONFIGURATIONS = {",
    ]
    for ref in rtg.configurations.values():
        lines.append(
            f"    {ref.name!r}: ({ref.datapath_file!r}, {ref.fsm_file!r}),"
        )
    lines.append("}")
    lines.append("")
    lines.append("")
    lines.append("def next_configuration(configuration, env):")
    lines.append('    """The partition to load next, or None when done."""')
    keyword = "if"
    for name in rtg.configurations:
        lines.append(f"    {keyword} configuration == {name!r}:")
        keyword = "elif"
        emitted_default = False
        for transition in rtg.transitions_from(name):
            if transition.unconditional:
                lines.append(f"        return {transition.target!r}")
                emitted_default = True
                break
            lines.append(
                f"        if {transition.condition.to_python()}:"
            )
            lines.append(f"            return {transition.target!r}")
        if not emitted_default:
            lines.append("        return None")
    lines.append(
        "    raise ValueError(f\"unknown configuration {configuration!r}\")"
    )
    return "\n".join(lines) + "\n"


class GeneratedRtgControl:
    """Wraps an exec()'d generated RTG module."""

    def __init__(self, source: str) -> None:
        self.source = source
        namespace: Dict[str, object] = {}
        exec(compile(source, "<generated-rtg>", "exec"), namespace)
        self.name: str = namespace["NAME"]  # type: ignore[assignment]
        self.start: str = namespace["START"]  # type: ignore[assignment]
        self.finals: FrozenSet[str] = namespace["FINALS"]  # type: ignore[assignment]
        self.configurations: Dict[str, tuple] = \
            namespace["CONFIGURATIONS"]  # type: ignore[assignment]
        self._next: Callable = namespace["next_configuration"]  # type: ignore[assignment]

    def next_configuration(self, configuration: str,
                           env: Dict[str, int]) -> Optional[str]:
        return self._next(configuration, env)


def compile_rtg(rtg: Rtg) -> GeneratedRtgControl:
    return GeneratedRtgControl(rtg_to_python(rtg))


class InterpretedRtgControl:
    """Direct object-model walk of the RTG (ablation baseline)."""

    def __init__(self, rtg: Rtg) -> None:
        rtg.validate()
        self._rtg = rtg
        self.name = rtg.name
        self.start = rtg.start
        self.finals = frozenset(rtg.final_configurations)
        self.configurations = {
            ref.name: (ref.datapath_file, ref.fsm_file)
            for ref in rtg.configurations.values()
        }

    def next_configuration(self, configuration: str,
                           env: Dict[str, int]) -> Optional[str]:
        return self._rtg.next_configuration(configuration, env)
