"""Graphviz backends — the paper's "to dotty" stylesheets.

Each IR (datapath, FSM, RTG) renders to Graphviz source for inspection
with any dot viewer.  Rendering to an image is out of scope here, exactly
as in the paper where ``dotty`` is an external tool.
"""

from __future__ import annotations

from typing import List

from ..hdl.model.datapath import Datapath
from ..hdl.model.fsm import Fsm
from ..hdl.model.rtg import Rtg
from .engine import register_translation

__all__ = ["datapath_to_dot", "fsm_to_dot", "rtg_to_dot"]

_TYPE_SHAPES = {
    "reg": ("box", "lightblue"),
    "sram": ("box3d", "lightyellow"),
    "rom": ("box3d", "lightyellow"),
    "mux": ("trapezium", "lightgrey"),
    "const": ("plaintext", "white"),
}


def _quote(text: str) -> str:
    return '"' + text.replace('"', r'\"') + '"'


@register_translation(Datapath, "dot")
def datapath_to_dot(datapath: Datapath) -> str:
    """Structural view: components as nodes, nets as edges."""
    lines: List[str] = [
        f"digraph {_quote(datapath.name)} {{",
        "  rankdir=LR;",
        "  node [fontsize=10];",
    ]
    for decl in datapath.components.values():
        shape, fill = _TYPE_SHAPES.get(decl.type, ("ellipse", "white"))
        label = f"{decl.name}\\n{decl.type}[{decl.width}]"
        extra = ""
        if decl.type == "const":
            label = f"{decl.param('value', '?')}"
        if decl.type in ("sram", "rom"):
            extra = f"\\n({decl.param('memory', '?')})"
        lines.append(
            f"  {_quote(decl.name)} [label={_quote(label + extra)} "
            f"shape={shape} style=filled fillcolor={fill}];"
        )
    for net in datapath.nets.values():
        for sink in net.sinks:
            lines.append(
                f"  {_quote(net.source.component)} -> "
                f"{_quote(sink.component)} "
                f"[label={_quote(net.name)} fontsize=8];"
            )
    # control and status interface rendered as a synthetic FSM node
    if datapath.controls or datapath.statuses:
        lines.append(
            "  FSM [shape=doubleoctagon style=filled fillcolor=lightpink];"
        )
        for line in datapath.controls.values():
            for target in line.targets:
                lines.append(
                    f"  FSM -> {_quote(target.component)} "
                    f"[label={_quote(line.name)} style=dashed fontsize=8 "
                    f"color=red];"
                )
        for status in datapath.statuses.values():
            lines.append(
                f"  {_quote(status.source.component)} -> FSM "
                f"[label={_quote(status.name)} style=dashed fontsize=8 "
                f"color=blue];"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"


@register_translation(Fsm, "dot")
def fsm_to_dot(fsm: Fsm) -> str:
    """State diagram: states as nodes, guarded transitions as edges."""
    lines: List[str] = [
        f"digraph {_quote(fsm.name)} {{",
        "  node [shape=circle fontsize=10];",
        "  __reset [shape=point];",
        f"  __reset -> {_quote(fsm.reset_state or '?')};",
    ]
    for state in fsm.states.values():
        shape = "doublecircle" if state.name in fsm.final_states else "circle"
        asserted = [f"{k}={v}" for k, v in state.assigns.items()]
        label = state.name
        if asserted:
            label += "\\n" + "\\n".join(asserted)
        lines.append(
            f"  {_quote(state.name)} [shape={shape} label={_quote(label)}];"
        )
        for transition in state.transitions:
            guard = "" if transition.unconditional else \
                transition.condition.to_text()
            lines.append(
                f"  {_quote(state.name)} -> {_quote(transition.target)} "
                f"[label={_quote(guard)} fontsize=8];"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"


@register_translation(Rtg, "dot")
def rtg_to_dot(rtg: Rtg) -> str:
    """Configuration flow: one node per temporal partition."""
    lines: List[str] = [
        f"digraph {_quote(rtg.name)} {{",
        "  node [shape=component fontsize=10];",
        "  __start [shape=point];",
        f"  __start -> {_quote(rtg.start or '?')};",
    ]
    for ref in rtg.configurations.values():
        style = "bold" if ref.name in rtg.final_configurations else "solid"
        label = f"{ref.name}\\n{ref.datapath_file}\\n{ref.fsm_file}"
        lines.append(
            f"  {_quote(ref.name)} [label={_quote(label)} style={style}];"
        )
    for transition in rtg.transitions:
        guard = "" if transition.unconditional else \
            transition.condition.to_text()
        lines.append(
            f"  {_quote(transition.source)} -> {_quote(transition.target)} "
            f"[label={_quote(guard)} fontsize=8];"
        )
    for decl in rtg.memories.values():
        lines.append(
            f"  {_quote('mem:' + decl.name)} [shape=cylinder "
            f"label={_quote(decl.name + f' [{decl.width}x{decl.depth}]')}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
